// Package obslabelgood shows the accepted label sources: constants,
// bounded-label functions and constant-forwarding parameters.
package obslabelgood

import "securexml/internal/obs"

type kind int

// The two kinds this fake subsystem distinguishes.
const (
	kindA kind = iota
	kindB
)

// metricLabel is a bounded-label function: every return statement yields
// a literal, so the label set is finite at compile time.
func (k kind) metricLabel() string {
	switch k {
	case kindA:
		return "a"
	case kindB:
		return "b"
	default:
		return "unknown"
	}
}

// Record labels with a constant key and a bounded function value.
func Record(k kind) {
	obs.Default().Counter("vettest_ops_total", "kind", k.metricLabel()).Inc()
}

// recordOutcome forwards its parameter into a label; every call site
// passes a constant, so the set stays bounded.
func recordOutcome(outcome string) {
	obs.Default().Counter("vettest_outcomes_total", "outcome", outcome).Inc()
}

// RecordOK records a success.
func RecordOK() { recordOutcome("ok") }

// RecordErr records a failure.
func RecordErr() { recordOutcome("error") }

// Package-level literal-label counters are the repair engine's idiom:
// one counter per outcome, labels fixed at var-declaration time.
var (
	plansTotal    = obs.Default().Counter("vettest_plans_total")
	candsOffered  = obs.Default().Counter("vettest_cands_total", "outcome", "offered")
	candsRejected = obs.Default().Counter("vettest_cands_total", "outcome", "rejected")
)

// PlanOutcome bumps the fixed-label counters.
func PlanOutcome(ok bool) {
	plansTotal.Inc()
	if ok {
		candsOffered.Inc()
	} else {
		candsRejected.Inc()
	}
}
