// Package snapgood is the conforming twin of snapbad: snapshots are read
// freely, and edits go to a private deep copy obtained with Clone (or
// view.View.Snapshot), never to the shared snapshot itself.
package snapgood

import "securexml/internal/core"

// Redact clones the snapshot document and edits the private copy.
func Redact(s *core.Session) (string, error) {
	v, err := s.View()
	if err != nil {
		return "", err
	}
	w := v.Doc.Clone()
	for _, c := range w.Root().Children() {
		_ = w.Remove(c)
	}
	return w.XML(), nil
}

// Inspect reads snapshot state without writing any of it.
func Inspect(s *core.Session) (int, error) {
	v, err := s.View()
	if err != nil {
		return 0, err
	}
	return v.Restricted + v.Hidden, nil
}
