// Package snapbad seeds the snapshotimmut violations: a Session.View
// snapshot is edited in place, corrupting the session's cached view and
// the write path's identifier mapping.
package snapbad

import "securexml/internal/core"

// Scrub removes nodes from the shared snapshot document and resets its
// accounting: both writes land in the session's cached view.
func Scrub(s *core.Session) error {
	v, err := s.View()
	if err != nil {
		return err
	}
	for _, c := range v.Doc.Root().Children() {
		_ = v.Doc.Remove(c)
	}
	v.Restricted = 0
	return nil
}
