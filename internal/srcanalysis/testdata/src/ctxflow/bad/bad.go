// Package ctxflowbad seeds the ctxflow violations: dropped, replaced and
// bypassed request contexts.
package ctxflowbad

import "context"

// Lookup accepts a context and never reads it: the request identity dies
// here.
func Lookup(ctx context.Context, key string) string {
	return key
}

// Refresh touches its context but still spawns a fresh root where the
// caller's context should have been forwarded.
func Refresh(ctx context.Context) error {
	_ = ctx
	return probe(context.Background())
}

func probe(ctx context.Context) error {
	_ = ctx
	return nil
}

// Handle has a Ctx variant but carries its own logic instead of
// forwarding: the context-free path becomes the unaudited back door.
func Handle(key string) string {
	if key == "" {
		return "empty"
	}
	return key
}

// HandleCtx is the context-aware variant Handle fails to forward to.
func HandleCtx(ctx context.Context, key string) string {
	_ = ctx
	return key
}
