// Package ctxflowbad seeds the ctxflow violations: dropped, replaced and
// bypassed request contexts.
package ctxflowbad

import "context"

// Lookup accepts a context and never reads it: the request identity dies
// here.
func Lookup(ctx context.Context, key string) string {
	return key
}

// Refresh touches its context but still spawns a fresh root where the
// caller's context should have been forwarded.
func Refresh(ctx context.Context) error {
	_ = ctx
	return probe(context.Background())
}

func probe(ctx context.Context) error {
	_ = ctx
	return nil
}

// Handle has a Ctx variant but carries its own logic instead of
// forwarding: the context-free path becomes the unaudited back door.
func Handle(key string) string {
	if key == "" {
		return "empty"
	}
	return key
}

// HandleCtx is the context-aware variant Handle fails to forward to.
func HandleCtx(ctx context.Context, key string) string {
	_ = ctx
	return key
}

// Fix mirrors a repair-engine entry point that grows its own iteration
// logic instead of forwarding to FixCtx: the dry-run path and the traced
// path can drift apart.
func Fix(key string) string {
	if key == "" {
		return "clean"
	}
	return key
}

// FixCtx is the context-aware variant Fix fails to forward to.
func FixCtx(ctx context.Context, key string) string {
	_ = ctx
	return key
}
