// Package ctxflowgood shows the conforming context shapes: a used and
// forwarded context plus the sanctioned one-statement compat shim.
package ctxflowgood

import "context"

// LookupCtx threads the context through to the work.
func LookupCtx(ctx context.Context, key string) string {
	return inner(ctx, key)
}

// Lookup is the sanctioned compat shim: exactly one statement forwarding
// a fresh root into the Ctx variant.
func Lookup(key string) string {
	return LookupCtx(context.Background(), key)
}

func inner(ctx context.Context, key string) string {
	select {
	case <-ctx.Done():
		return ""
	default:
	}
	return key
}

// PlanCtx mirrors the repair planner's context-aware entry point.
func PlanCtx(ctx context.Context, key string) string {
	return inner(ctx, key)
}

// Plan is its sanctioned compat shim: one forwarding statement.
func Plan(key string) string {
	return PlanCtx(context.Background(), key)
}
