// Package cowgood is the conforming twin of cowbad: shared values are
// cloned before mutation, either directly (maps.Clone, slices.Clone) or
// through a clone-on-first-write helper, and freshly built values are
// recognized as private.
package cowgood

import (
	"maps"
	"slices"
)

// registry interns per-user permission masks shared across sessions.
type registry struct {
	masks map[string]map[string]uint8
}

// masksFor returns the interned mask for user; callers must clone before
// mutating.
func (r *registry) masksFor(user string) map[string]uint8 {
	return r.masks[user]
}

// Revoke clones the shared mask and edits the private copy.
func Revoke(r *registry, user, id string) map[string]uint8 {
	m := maps.Clone(r.masksFor(user))
	delete(m, id)
	m[id] = 0
	return m
}

// bank holds interned dense row sets.
type bank struct {
	rows map[string][]int
}

// rowsFor returns the interned row set; callers must clone.
func (b *bank) rowsFor(key string) []int {
	return b.rows[key]
}

// Extend appends to a cloned slice, leaving the interned one untouched.
func Extend(b *bank, key string) []int {
	rs := slices.Clone(b.rowsFor(key))
	return append(rs, 1)
}

// perms is a copy-on-write overlay owner in the style of policy.Perms.
type perms struct {
	user string
	// grants is the merged mask, shared across sessions until the first
	// write; callers must clone before mutating.
	grants map[string]uint8
	shared bool
}

// mutable makes grants private, cloning on first write.
func (p *perms) mutable() {
	if !p.shared {
		return
	}
	g := maps.Clone(p.grants)
	p.grants, p.shared = g, false
}

// Set edits through the clone-on-first-write helper.
func (p *perms) Set(id string, v uint8) {
	p.mutable()
	p.grants[id] = v
}

// fresh assembles a brand-new perms: its grants map is private by
// construction, so populating it needs no clone.
func fresh(user string) *perms {
	p := &perms{user: user, grants: map[string]uint8{}}
	p.grants[user] = 1
	return p
}
