// Package cowbad seeds the cowdiscipline violations: values returned
// under a "callers must clone" contract are mutated in place, leaking the
// edit into every other holder of the shared value.
package cowbad

// registry interns per-user permission masks shared across sessions.
type registry struct {
	masks map[string]map[string]uint8
}

// masksFor returns the interned mask for user; callers must clone before
// mutating.
func (r *registry) masksFor(user string) map[string]uint8 {
	return r.masks[user]
}

// Revoke edits the shared mask in place: every session holding it sees
// the revocation — or worse, a concurrent map write.
func Revoke(r *registry, user, id string) {
	m := r.masksFor(user)
	delete(m, id)
	m[id] = 0
}

// bank holds interned dense row sets.
type bank struct {
	rows map[string][]int
}

// rowsFor returns the interned row set; callers must clone.
func (b *bank) rowsFor(key string) []int {
	return b.rows[key]
}

// Extend appends into the shared backing array: if spare capacity exists,
// the write lands in the interned slice.
func Extend(b *bank, key string) []int {
	rs := b.rowsFor(key)
	return append(rs, 1)
}
