package srcanalysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"securexml/internal/findings"
)

// BaselineEntry grandfathers one family of findings. Matching is by
// (pass, code, file, function, key) — deliberately line-independent, so
// unrelated edits to a file do not invalidate the baseline, while moving
// the flagged construct to another function does.
type BaselineEntry struct {
	Pass     string `json:"pass"`
	Code     string `json:"code"`
	File     string `json:"file"`     // module-relative path
	Function string `json:"function"` // enclosing function ("Type.Method" for methods)
	Key      string `json:"key"`      // the finding's stable key
	// Justification says why the finding is acceptable; required, because
	// a baseline entry is a standing exception to a proven invariant.
	Justification string `json:"justification"`
}

// Baseline is the committed set of grandfathered findings. An entry that
// matches nothing is itself reported as a stale-entry error, so the file
// can only shrink over time.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, so new checkouts and the zero-exception end state need no
// file at all.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("srcanalysis: baseline %s: %w", path, err)
	}
	for i, e := range b.Entries {
		if e.Pass == "" || e.Code == "" || e.File == "" || e.Justification == "" {
			return nil, fmt.Errorf("srcanalysis: baseline %s: entry %d needs pass, code, file and justification", path, i)
		}
	}
	return &b, nil
}

// RegenerateBaseline builds a fresh baseline from a report produced with
// an empty baseline (so every finding is visible). Each finding becomes
// one entry, deduplicated by the (pass, code, file, function, key)
// match tuple; entries that already existed in prev keep their committed
// justification, new ones get a placeholder that LoadBaseline accepts but
// a reviewer must replace. The result is sorted, so regeneration is
// deterministic and diffs stay reviewable.
func RegenerateBaseline(rep *findings.Report, prev *Baseline) *Baseline {
	justify := make(map[BaselineEntry]string)
	if prev != nil {
		for _, e := range prev.Entries {
			key := e
			key.Justification = ""
			justify[key] = e.Justification
		}
	}
	seen := make(map[BaselineEntry]bool)
	b := &Baseline{}
	for i := range rep.Findings {
		f := &rep.Findings[i]
		if f.Pos == "" {
			continue // tool-level findings (e.g. stale-entry) are not code sites
		}
		e := BaselineEntry{
			Pass:     f.Pass,
			Code:     f.Code,
			File:     strings.SplitN(f.Pos, ":", 2)[0],
			Function: f.Function,
			Key:      f.Key,
		}
		if seen[e] {
			continue
		}
		seen[e] = true
		if j, ok := justify[e]; ok {
			e.Justification = j
		} else {
			e.Justification = "TODO: justify or fix"
		}
		b.Entries = append(b.Entries, e)
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.Pass != c.Pass {
			return a.Pass < c.Pass
		}
		if a.Code != c.Code {
			return a.Code < c.Code
		}
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Function != c.Function {
			return a.Function < c.Function
		}
		return a.Key < c.Key
	})
	return b
}

// SaveBaseline writes the baseline as indented JSON, the format the
// committed vet-baseline.json is kept in.
func SaveBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// match returns the index of the first entry covering the finding, or -1.
func (b *Baseline) match(rf *rawFinding) int {
	for i, e := range b.Entries {
		if e.Pass == rf.f.Pass && e.Code == rf.f.Code && e.File == rf.file &&
			e.Function == rf.f.Function && e.Key == rf.f.Key {
			return i
		}
	}
	return -1
}
