package srcanalysis

import (
	"encoding/json"
	"fmt"
	"os"
)

// BaselineEntry grandfathers one family of findings. Matching is by
// (pass, code, file, function, key) — deliberately line-independent, so
// unrelated edits to a file do not invalidate the baseline, while moving
// the flagged construct to another function does.
type BaselineEntry struct {
	Pass     string `json:"pass"`
	Code     string `json:"code"`
	File     string `json:"file"`     // module-relative path
	Function string `json:"function"` // enclosing function ("Type.Method" for methods)
	Key      string `json:"key"`      // the finding's stable key
	// Justification says why the finding is acceptable; required, because
	// a baseline entry is a standing exception to a proven invariant.
	Justification string `json:"justification"`
}

// Baseline is the committed set of grandfathered findings. An entry that
// matches nothing is itself reported as a stale-entry error, so the file
// can only shrink over time.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, so new checkouts and the zero-exception end state need no
// file at all.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("srcanalysis: baseline %s: %w", path, err)
	}
	for i, e := range b.Entries {
		if e.Pass == "" || e.Code == "" || e.File == "" || e.Justification == "" {
			return nil, fmt.Errorf("srcanalysis: baseline %s: entry %d needs pass, code, file and justification", path, i)
		}
	}
	return &b, nil
}

// match returns the index of the first entry covering the finding, or -1.
func (b *Baseline) match(rf *rawFinding) int {
	for i, e := range b.Entries {
		if e.Pass == rf.f.Pass && e.Code == rf.f.Code && e.File == rf.file &&
			e.Function == rf.f.Function && e.Key == rf.f.Key {
			return i
		}
	}
	return -1
}
