package journal

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestAppendReadRoundTrip(t *testing.T) {
	var log strings.Builder
	jw := NewWriter(&log, 0)
	docs := []struct{ user, mods string }{
		{"alice", "<xupdate:modifications><xupdate:remove select=\"/a\"/></xupdate:modifications>"},
		{"bob", "<xupdate:modifications>\n  multi\n  line\n</xupdate:modifications>"},
		{"alice", "<xupdate:modifications/>"},
	}
	for i, d := range docs {
		seq, err := jw.Append(d.user, d.mods)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Errorf("seq = %d, want %d", seq, i+1)
		}
	}
	if jw.Seq() != 3 {
		t.Errorf("Seq = %d", jw.Seq())
	}
	entries, err := Read(strings.NewReader(log.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(docs) {
		t.Fatalf("%d entries, want %d", len(entries), len(docs))
	}
	for i, e := range entries {
		if e.User != docs[i].user || e.Modifications != docs[i].mods || e.Seq != uint64(i+1) {
			t.Errorf("entry %d = %+v", i, e)
		}
	}
}

func TestSeqContinuation(t *testing.T) {
	var log strings.Builder
	jw := NewWriter(&log, 41)
	seq, err := jw.Append("u", "<xupdate:modifications/>")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Errorf("seq = %d, want 42", seq)
	}
}

func TestAppendRejectsFramingBytes(t *testing.T) {
	jw := NewWriter(&strings.Builder{}, 0)
	if _, err := jw.Append("user with space", "<x/>"); err == nil {
		t.Error("user with space accepted")
	}
	if _, err := jw.Append("user\nnewline", "<x/>"); err == nil {
		t.Error("user with newline accepted")
	}
}

func TestReadTornTailKeepsPrefix(t *testing.T) {
	var log strings.Builder
	jw := NewWriter(&log, 0)
	if _, err := jw.Append("u", "<a/>"); err != nil {
		t.Fatal(err)
	}
	if _, err := jw.Append("u", "<b/>"); err != nil {
		t.Fatal(err)
	}
	full := log.String()
	torn := full[:len(full)-3] // crash mid-entry
	entries, err := Read(strings.NewReader(torn))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if len(entries) != 1 || entries[0].Modifications != "<a/>" {
		t.Errorf("prefix = %+v", entries)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"garbage header\nbody\n",
		"entry x u 4\nabcd\n",
		"entry 1 u notanumber\nabcd\n",
		"entry 1 u 4\nabcdX", // missing terminator
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("Read(%q) err = %v, want ErrCorrupt", src, err)
		}
	}
	// Empty journals and trailing blank lines are fine.
	if es, err := Read(strings.NewReader("")); err != nil || len(es) != 0 {
		t.Errorf("empty journal: %v %v", es, err)
	}
}

type fakeApplier struct {
	applied []string
	failAt  int
}

func (f *fakeApplier) ApplyAs(user, mods string) error {
	if f.failAt > 0 && len(f.applied)+1 == f.failAt {
		return fmt.Errorf("boom")
	}
	f.applied = append(f.applied, user+":"+mods)
	return nil
}

func TestReplay(t *testing.T) {
	entries := []Entry{
		{Seq: 5, User: "a", Modifications: "<one/>"},
		{Seq: 6, User: "b", Modifications: "<two/>"},
	}
	f := &fakeApplier{}
	applied, last, err := Replay(f, entries)
	if err != nil || applied != 2 || last != 6 {
		t.Fatalf("Replay = %d, %d, %v", applied, last, err)
	}
	if f.applied[0] != "a:<one/>" || f.applied[1] != "b:<two/>" {
		t.Errorf("applied = %v", f.applied)
	}
	// Failure stops and reports position.
	f2 := &fakeApplier{failAt: 2}
	applied, last, err = Replay(f2, entries)
	if err == nil || applied != 1 || last != 5 {
		t.Errorf("failed replay = %d, %d, %v", applied, last, err)
	}
}
