// Package journal implements a logical operation log (command WAL) for the
// secure XML database: every executed modification document is appended,
// framed with its issuing user, and can be replayed — through the same
// security path — onto a database restored from an earlier snapshot. A
// snapshot (internal/storage) plus its journal suffix reproduces the exact
// database state, because execution is deterministic: identifiers are
// allocated by the labeling scheme from tree positions alone, rule
// priorities are explicit, and xupdate:variable bindings re-resolve against
// the same intermediate states.
//
// Frame format (text, append-only):
//
//	entry <seq> <user> <bytes>\n
//	<bytes bytes of <xupdate:modifications> XML>\n
package journal

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"securexml/internal/obs"
)

// ErrCorrupt is wrapped by all malformed-journal errors.
var ErrCorrupt = errors.New("journal: corrupt entry")

// Telemetry: commit latency (the ROADMAP durability item) — how long one
// journal append, i.e. the write making an executed modification durable,
// takes end to end — plus the appended payload volume.
var (
	commitHist = obs.Default().Histogram("xmlsec_journal_commit_seconds", obs.LatencyBuckets)
	appended   = obs.Default().Counter("xmlsec_journal_appended_bytes_total")
)

// Entry is one logged command.
type Entry struct {
	Seq  uint64
	User string
	// Modifications is the <xupdate:modifications> document that was
	// executed.
	Modifications string
}

// Writer appends entries to a log. Safe for concurrent use.
type Writer struct {
	mu  sync.Mutex
	w   io.Writer
	seq uint64
}

// NewWriter wraps an append-only destination. seqStart is the sequence
// number to continue from (0 for a fresh journal; the last replayed
// sequence when continuing after recovery).
func NewWriter(w io.Writer, seqStart uint64) *Writer {
	return &Writer{w: w, seq: seqStart}
}

// Append logs one executed modification document and returns its sequence
// number.
func (jw *Writer) Append(user, modifications string) (uint64, error) {
	return jw.AppendCtx(context.Background(), user, modifications)
}

// AppendCtx is Append with request-scoped tracing: the commit is recorded
// into the commit-latency histogram and, under an active trace, as a
// journal_append span annotated with the payload size.
func (jw *Writer) AppendCtx(ctx context.Context, user, modifications string) (uint64, error) {
	if strings.ContainsAny(user, " \n") {
		return 0, fmt.Errorf("journal: user %q contains framing bytes", user)
	}
	_, sp := obs.StartSpanCtx(ctx, "journal_append", commitHist)
	defer sp.End()
	sp.AnnotateInt("bytes", int64(len(modifications)))
	appended.Add(uint64(len(modifications)))
	jw.mu.Lock()
	defer jw.mu.Unlock()
	jw.seq++
	if _, err := fmt.Fprintf(jw.w, "entry %d %s %d\n%s\n", jw.seq, user, len(modifications), modifications); err != nil {
		return 0, err
	}
	return jw.seq, nil
}

// Seq returns the last assigned sequence number.
func (jw *Writer) Seq() uint64 {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.seq
}

// Read parses a journal stream into entries, stopping at EOF. A torn final
// entry (crash during append) is reported via ErrCorrupt together with the
// entries read so far, so recovery can keep the prefix.
func Read(r io.Reader) ([]Entry, error) {
	br := bufio.NewReader(r)
	var entries []Entry
	for {
		header, err := br.ReadString('\n')
		if err == io.EOF && header == "" {
			return entries, nil
		}
		if err != nil && err != io.EOF {
			return entries, err
		}
		header = strings.TrimSuffix(header, "\n")
		if strings.TrimSpace(header) == "" {
			return entries, nil
		}
		parts := strings.Fields(header)
		if len(parts) != 4 || parts[0] != "entry" {
			return entries, fmt.Errorf("%w: bad header %q", ErrCorrupt, header)
		}
		seq, err1 := strconv.ParseUint(parts[1], 10, 64)
		size, err2 := strconv.Atoi(parts[3])
		if err1 != nil || err2 != nil || size < 0 {
			return entries, fmt.Errorf("%w: bad header %q", ErrCorrupt, header)
		}
		body := make([]byte, size+1) // + trailing newline
		if _, err := io.ReadFull(br, body); err != nil {
			return entries, fmt.Errorf("%w: torn entry %d: %v", ErrCorrupt, seq, err)
		}
		if body[size] != '\n' {
			return entries, fmt.Errorf("%w: entry %d missing terminator", ErrCorrupt, seq)
		}
		entries = append(entries, Entry{Seq: seq, User: parts[2], Modifications: string(body[:size])})
	}
}

// Applier is the replay target: core.Database satisfies it via an adapter
// in that package (sessions apply the logged documents through the normal
// security path).
type Applier interface {
	ApplyAs(user, modifications string) error
}

// Replay executes the entries in order against the target. It returns the
// number of applied entries and the last sequence number, which seeds the
// continuation Writer.
func Replay(target Applier, entries []Entry) (applied int, lastSeq uint64, err error) {
	for _, e := range entries {
		if err := target.ApplyAs(e.User, e.Modifications); err != nil {
			return applied, lastSeq, fmt.Errorf("journal: replaying entry %d (%s): %w", e.Seq, e.User, err)
		}
		applied++
		lastSeq = e.Seq
	}
	return applied, lastSeq, nil
}
