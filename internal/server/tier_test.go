// Forced read-ladder tier (WithForcedTier / xmlsec-server -tier): every
// /query and /value runs on the pinned tier, the served tier is reported
// in X-Query-Tier, and a query the pinned tier cannot serve answers 409
// instead of silently falling through.
package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"securexml/internal/core"
)

// getTier performs an authenticated GET and returns status, X-Query-Tier
// and body.
func getTier(t *testing.T, ts *httptest.Server, user, path string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.SetBasicAuth(user, "")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("X-Query-Tier")
}

func tierServer(t *testing.T, tier core.Tier) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(testServerDB(t), WithForcedTier(tier)))
	t.Cleanup(ts.Close)
	return ts
}

func TestForcedTierPinsLadder(t *testing.T) {
	cases := []struct {
		tier core.Tier
		want string
	}{
		{core.TierRewrite, "rewrite"},
		{core.TierQfilter, "qfilter"},
		{core.TierView, "view"},
	}
	for _, tc := range cases {
		ts := tierServer(t, tc.tier)
		status, tier := getTier(t, ts, "laporte", "/query?xpath=//service")
		if status != http.StatusOK {
			t.Errorf("tier %s: /query status %d, want 200", tc.want, status)
		}
		if tier != tc.want {
			t.Errorf("pinned %s but X-Query-Tier = %q", tc.want, tier)
		}
		// Scalar values are servable from every tier.
		status, tier = getTier(t, ts, "laporte", "/value?xpath="+`count(//service)`)
		if status != http.StatusOK {
			t.Errorf("tier %s: /value status %d, want 200", tc.want, status)
		}
		if tier != tc.want {
			t.Errorf("pinned %s but /value X-Query-Tier = %q", tc.want, tier)
		}
	}
}

// TestForcedTierUnavailable: non-empty node-set values leak raw source
// nodes from the rewrite and qfilter tiers, so a pin there must refuse
// (409 Conflict) instead of falling through to the view.
func TestForcedTierUnavailable(t *testing.T) {
	for _, tier := range []core.Tier{core.TierRewrite, core.TierQfilter} {
		ts := tierServer(t, tier)
		status, _ := getTier(t, ts, "laporte", "/value?xpath=//service")
		if status != http.StatusConflict {
			t.Errorf("tier %s: node-set /value status %d, want 409", tier, status)
		}
	}
	// Unpinned, the same query descends to the view tier and succeeds.
	ts := testServer(t)
	status, tier := getTier(t, ts, "laporte", "/value?xpath=//service")
	if status != http.StatusOK {
		t.Errorf("auto: node-set /value status %d, want 200", status)
	}
	if tier != "view" {
		t.Errorf("auto: node-set /value served from %q, want view", tier)
	}
}
