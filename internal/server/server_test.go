package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"securexml/internal/core"
	"securexml/internal/policy"
)

const medXML = `<patients><franck><service>otolaryngology</service><diagnosis>tonsillitis</diagnosis></franck><robert><service>pneumology</service><diagnosis>pneumonia</diagnosis></robert></patients>`

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(testServerDB(t)))
	t.Cleanup(ts.Close)
	return ts
}

// testServerDB builds the hospital database the endpoint tests run over.
func testServerDB(t *testing.T) *core.Database {
	t.Helper()
	db := core.New()
	steps := []error{
		db.LoadXMLString(medXML),
		db.AddRole("staff"),
		db.AddRole("secretary", "staff"),
		db.AddRole("doctor", "staff"),
		db.AddRole("patient"),
		db.AddUser("beaufort", "secretary"),
		db.AddUser("laporte", "doctor"),
		db.AddUser("robert", "patient"),
		db.Grant(policy.Read, "/descendant-or-self::node()", "staff"),
		db.Revoke(policy.Read, "//diagnosis/node()", "secretary"),
		db.Grant(policy.Position, "//diagnosis/node()", "secretary"),
		db.Grant(policy.Read, "/patients", "patient"),
		db.Grant(policy.Read, "/patients/*[name() = $USER]/descendant-or-self::node()", "patient"),
		db.Grant(policy.Update, "//diagnosis/node()", "doctor"),
		db.Grant(policy.Delete, "//diagnosis/node()", "doctor"),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// get performs an authenticated GET and returns status and body.
func get(t *testing.T, ts *httptest.Server, user, path string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if user != "" {
		req.SetBasicAuth(user, "")
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func post(t *testing.T, ts *httptest.Server, user, path, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.SetBasicAuth(user, "")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(out)
}

func TestAuthRequired(t *testing.T) {
	ts := testServer(t)
	code, _ := get(t, ts, "", "/view")
	if code != http.StatusUnauthorized {
		t.Errorf("unauthenticated /view -> %d", code)
	}
	code, _ = get(t, ts, "mallory", "/view")
	if code != http.StatusForbidden {
		t.Errorf("unknown user /view -> %d", code)
	}
	code, _ = get(t, ts, "doctor", "/view")
	if code != http.StatusForbidden {
		t.Errorf("role login -> %d", code)
	}
}

func TestViewPerUser(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, "beaufort", "/view")
	if code != http.StatusOK {
		t.Fatalf("/view -> %d: %s", code, body)
	}
	if !strings.Contains(body, "RESTRICTED") || strings.Contains(body, "tonsillitis") {
		t.Errorf("secretary view wrong:\n%s", body)
	}
	_, body = get(t, ts, "robert", "/view")
	if strings.Contains(body, "franck") || !strings.Contains(body, "pneumonia") {
		t.Errorf("robert view wrong:\n%s", body)
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, "laporte", "/query?xpath="+urlEscape("//diagnosis/text()"))
	if code != http.StatusOK {
		t.Fatalf("/query -> %d: %s", code, body)
	}
	if !strings.Contains(body, "tonsillitis") || !strings.Contains(body, "pneumonia") {
		t.Errorf("doctor query results:\n%s", body)
	}
	code, _ = get(t, ts, "laporte", "/query")
	if code != http.StatusBadRequest {
		t.Errorf("missing xpath -> %d", code)
	}
	code, _ = get(t, ts, "laporte", "/query?xpath="+urlEscape("//["))
	if code != http.StatusBadRequest {
		t.Errorf("bad xpath -> %d", code)
	}
}

func TestValueEndpoint(t *testing.T) {
	ts := testServer(t)
	_, body := get(t, ts, "robert", "/value?xpath="+urlEscape("count(//diagnosis)"))
	if strings.TrimSpace(body) != "1" {
		t.Errorf("robert counts %q diagnoses, want 1", strings.TrimSpace(body))
	}
	_, body = get(t, ts, "laporte", "/value?xpath="+urlEscape("count(//diagnosis)"))
	if strings.TrimSpace(body) != "2" {
		t.Errorf("doctor counts %q", strings.TrimSpace(body))
	}
	code, _ := get(t, ts, "laporte", "/value")
	if code != http.StatusBadRequest {
		t.Errorf("missing xpath -> %d", code)
	}
}

func TestUpdateEndpoint(t *testing.T) {
	ts := testServer(t)
	mods := `<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">
	  <xupdate:update select="/patients/franck/diagnosis">pharyngitis</xupdate:update>
	</xupdate:modifications>`
	code, body := post(t, ts, "laporte", "/update", mods)
	if code != http.StatusOK || !strings.Contains(body, "applied=1") {
		t.Fatalf("doctor update -> %d: %s", code, body)
	}
	_, q := get(t, ts, "laporte", "/query?xpath="+urlEscape("/patients/franck/diagnosis/text()"))
	if !strings.Contains(q, "pharyngitis") {
		t.Errorf("update not visible: %s", q)
	}
	// The secretary's attempt is refused per node, reported, and harmless.
	code, body = post(t, ts, "beaufort", "/update", mods)
	if code != http.StatusOK || !strings.Contains(body, "applied=0") || !strings.Contains(body, "skipped:") {
		t.Errorf("secretary update -> %d: %s", code, body)
	}
	// Malformed documents are a client error.
	code, _ = post(t, ts, "laporte", "/update", "<garbage")
	if code != http.StatusBadRequest {
		t.Errorf("garbage update -> %d", code)
	}
}

func TestUpdateBodyLimit(t *testing.T) {
	ts := testServer(t)
	big := strings.Repeat("x", maxBody+2)
	code, _ := post(t, ts, "laporte", "/update", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body -> %d", code)
	}
}

func TestHealth(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, "", "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "nodes=12") {
		t.Errorf("/healthz -> %d: %s", code, body)
	}
}

// urlEscape covers the few characters the tests need.
func urlEscape(s string) string {
	r := strings.NewReplacer(
		"/", "%2F", "[", "%5B", "]", "%5D", " ", "%20",
		"(", "%28", ")", "%29", "=", "%3D", "'", "%27", "$", "%24",
	)
	return r.Replace(s)
}

func TestTransformEndpoint(t *testing.T) {
	ts := testServer(t)
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
	  <xsl:template match="/"><r><xsl:for-each select="/patients/*"><p dx="{diagnosis}"/></xsl:for-each></r></xsl:template>
	</xsl:stylesheet>`
	code, body := post(t, ts, "laporte", "/transform", sheet)
	if code != http.StatusOK || !strings.Contains(body, `dx="tonsillitis"`) {
		t.Fatalf("doctor transform -> %d: %s", code, body)
	}
	code, body = post(t, ts, "beaufort", "/transform", sheet)
	if code != http.StatusOK || strings.Contains(body, "tonsillitis") || !strings.Contains(body, "RESTRICTED") {
		t.Errorf("secretary transform -> %d: %s", code, body)
	}
	code, _ = post(t, ts, "laporte", "/transform", "<bad")
	if code != http.StatusBadRequest {
		t.Errorf("bad stylesheet -> %d", code)
	}
}

func TestAnalyzeEndpoint(t *testing.T) {
	ts := testServer(t)
	code, _ := get(t, ts, "", "/analyze")
	if code != http.StatusUnauthorized {
		t.Errorf("unauthenticated /analyze: %d", code)
	}
	code, body := get(t, ts, "beaufort", "/analyze")
	if code != http.StatusOK {
		t.Fatalf("/analyze: %d %s", code, body)
	}
	var rep struct {
		Rules    int               `json:"rules"`
		Findings []json.RawMessage `json:"findings"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("JSON: %v\n%s", err, body)
	}
	if rep.Rules != 7 || len(rep.Findings) != 0 {
		t.Errorf("rules=%d findings=%d, want 7 clean rules\n%s", rep.Rules, len(rep.Findings), body)
	}
	code, body = get(t, ts, "beaufort", "/analyze?format=text")
	if code != http.StatusOK || !strings.Contains(body, "no findings") {
		t.Errorf("text format: %d %q", code, body)
	}
}

// TestAnalyzeFixEndpoint: ?fix=1 switches to the canonical findings schema
// with a repairs array, matching xmlsec-lint -fix -json.
func TestAnalyzeFixEndpoint(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, "beaufort", "/analyze?fix=1")
	if code != http.StatusOK {
		t.Fatalf("/analyze?fix=1: %d %s", code, body)
	}
	var rep struct {
		Tool     string            `json:"tool"`
		Findings []json.RawMessage `json:"findings"`
		Repairs  []json.RawMessage `json:"repairs"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("JSON: %v\n%s", err, body)
	}
	if rep.Tool != "xmlsec-lint" {
		t.Errorf("tool = %q, want xmlsec-lint (canonical schema)", rep.Tool)
	}
	if len(rep.Findings) != 0 || len(rep.Repairs) != 0 {
		t.Errorf("clean policy should have no findings or repairs:\n%s", body)
	}
	code, body = get(t, ts, "beaufort", "/analyze?fix=1&format=text")
	if code != http.StatusOK || !strings.Contains(body, "no findings") {
		t.Errorf("text format: %d %q", code, body)
	}
}

func TestWarmEndpoint(t *testing.T) {
	ts := testServer(t)
	status, body := post(t, ts, "beaufort", "/warm", "")
	if status != http.StatusOK {
		t.Fatalf("POST /warm: status %d body %q", status, body)
	}
	var out map[string]int
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	if out["warmed"] != 3 {
		t.Fatalf("warmed = %d, want 3", out["warmed"])
	}
	// Bounded pool size is caller-selectable.
	if status, body := post(t, ts, "beaufort", "/warm?workers=2", ""); status != http.StatusOK {
		t.Fatalf("POST /warm?workers=2: status %d body %q", status, body)
	}
	if status, _ := post(t, ts, "beaufort", "/warm?workers=zero", ""); status != http.StatusBadRequest {
		t.Fatalf("bad workers param: status %d, want 400", status)
	}
}

func TestSharedSessionAcrossRequests(t *testing.T) {
	ts := testServer(t)
	// Two requests for the same user must not re-materialize: the second
	// is a view-cache hit on the shared session. We can't read counters
	// through the test server (global registry races with other tests), so
	// just pin the behavior: identical views, no error.
	s1, b1 := get(t, ts, "robert", "/view")
	s2, b2 := get(t, ts, "robert", "/view")
	if s1 != http.StatusOK || s2 != http.StatusOK {
		t.Fatalf("statuses %d, %d", s1, s2)
	}
	if b1 != b2 {
		t.Fatalf("views differ across requests:\n%s\nvs\n%s", b1, b2)
	}
}
