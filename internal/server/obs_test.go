package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"securexml/internal/access"
	"securexml/internal/core"
	"securexml/internal/xpath"
)

func TestRequestIDHeaderAndErrorBody(t *testing.T) {
	ts := testServer(t)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/query?xpath="+urlEscape("//["), nil)
	req.SetBasicAuth("laporte", "")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("missing X-Request-Id header")
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	if !strings.Contains(body.String(), "(request "+id+")") {
		t.Errorf("error body does not carry the request id %q:\n%s", id, body.String())
	}
	// IDs are unique per request.
	resp2, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if id2 := resp2.Header.Get("X-Request-Id"); id2 == "" || id2 == id {
		t.Errorf("request ids must be unique: %q then %q", id, id2)
	}
}

func TestStatusMapping(t *testing.T) {
	cases := []struct {
		err      error
		fallback int
		want     int
	}{
		{fmt.Errorf("wrap: %w", core.ErrUnknownUser), 500, http.StatusForbidden},
		{fmt.Errorf("wrap: %w", core.ErrNotUser), 500, http.StatusForbidden},
		{fmt.Errorf("wrap: %w", access.ErrUnknownUser), 400, http.StatusForbidden},
		{&xpath.SyntaxError{Expr: "//[", Pos: 2, Msg: "boom"}, 500, http.StatusBadRequest},
		{fmt.Errorf("policy: %w", xpath.ErrNotNodeSet), 500, http.StatusBadRequest},
		{errors.New("disk on fire"), 500, http.StatusInternalServerError},
		{errors.New("disk on fire"), 400, http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := statusFor(c.err, c.fallback); got != c.want {
			t.Errorf("statusFor(%v, %d) = %d, want %d", c.err, c.fallback, got, c.want)
		}
	}
}

// TestViewErrorMapping drives a real pipeline failure through /view: a rule
// whose path evaluates to an atomic value makes policy evaluation fail with
// an XPath type error, which must surface as 400, not 500.
func TestViewErrorMapping(t *testing.T) {
	ts := testServer(t)
	// Reach into a fresh server with a broken rule.
	db := core.New()
	for _, err := range []error{
		db.LoadXMLString(medXML),
		db.AddRole("staff"),
		db.AddUser("eve", "staff"),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Grant(0, "count(//diagnosis)", "staff"); err != nil {
		t.Fatal(err)
	}
	broken := httptest.NewServer(New(db))
	defer broken.Close()
	code, body := get(t, broken, "eve", "/view")
	if code != http.StatusBadRequest {
		t.Errorf("/view with non-nodeset rule -> %d, want 400: %s", code, body)
	}
	// The healthy server still serves 200.
	if code, _ := get(t, ts, "laporte", "/view"); code != http.StatusOK {
		t.Errorf("healthy /view -> %d", code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t)
	// Generate traffic across status classes and a write.
	get(t, ts, "laporte", "/view")
	get(t, ts, "laporte", "/query?xpath="+urlEscape("//diagnosis"))
	get(t, ts, "laporte", "/query?xpath="+urlEscape("//["))
	post(t, ts, "laporte", "/update", `<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">
	  <xupdate:update select="/patients/franck/diagnosis">pharyngitis</xupdate:update>
	</xupdate:modifications>`)

	code, body := get(t, ts, "", "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics -> %d", code)
	}
	for _, want := range []string{
		"# TYPE xmlsec_http_requests_total counter",
		`xmlsec_http_requests_total{endpoint="view",status="2xx"}`,
		`xmlsec_http_requests_total{endpoint="query",status="4xx"}`,
		"# TYPE xmlsec_http_request_duration_seconds histogram",
		`xmlsec_http_request_duration_seconds_count{endpoint="query"}`,
		"# TYPE xmlsec_stage_duration_seconds histogram",
		`xmlsec_stage_duration_seconds_count{stage="view_materialize"}`,
		`xmlsec_stage_duration_seconds_bucket{stage="xpath_eval",le="+Inf"}`,
		`xmlsec_stage_duration_seconds_count{stage="xupdate_apply"}`,
		"xmlsec_view_cache_hits_total",
		`xmlsec_view_cache_misses_total{reason="cold"}`,
		`xmlsec_policy_decisions_total{effect="allow",privilege="read"}`,
		`xmlsec_policy_decisions_total{effect="deny",privilege="update"}`,
		`xmlsec_session_ops_total{op="query",outcome="ok"}`,
		`xmlsec_xupdate_ops_total{kind="update",outcome="applied"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Exposition sanity: every non-comment line is "series value".
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Fields(line); len(parts) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestDebugVars(t *testing.T) {
	ts := testServer(t)
	get(t, ts, "laporte", "/view")
	code, body := get(t, ts, "", "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars -> %d", code)
	}
	var payload map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("expvar JSON: %v", err)
	}
	if _, ok := payload["xmlsec"]; !ok {
		t.Error("/debug/vars missing the xmlsec registry snapshot")
	}
}

func TestPprofGating(t *testing.T) {
	ts := testServer(t) // default: pprof off
	code, _ := get(t, ts, "", "/debug/pprof/")
	if code != http.StatusNotFound {
		t.Errorf("pprof must be off by default, got %d", code)
	}
	db := core.New()
	if err := db.LoadXMLString(medXML); err != nil {
		t.Fatal(err)
	}
	on := httptest.NewServer(New(db, WithPprof()))
	defer on.Close()
	code, body := get(t, on, "", "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Errorf("pprof with WithPprof -> %d", code)
	}
}

func TestAccessLog(t *testing.T) {
	db := core.New()
	for _, err := range []error{
		db.LoadXMLString(medXML),
		db.AddRole("staff"),
		db.AddUser("eve", "staff"),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	ts := httptest.NewServer(New(db, WithAccessLog(&buf)))
	defer ts.Close()
	_, _ = get(t, ts, "eve", "/query?xpath="+urlEscape("//diagnosis"))
	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("no access-log line emitted")
	}
	var entry struct {
		ReqID      string `json:"req_id"`
		User       string `json:"user"`
		Endpoint   string `json:"endpoint"`
		Status     int    `json:"status"`
		DurationUS int64  `json:"duration_us"`
	}
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("access log is not JSON: %v\n%s", err, line)
	}
	if entry.ReqID == "" || entry.User != "eve" || entry.Endpoint != "query" || entry.Status != 200 {
		t.Errorf("access log entry wrong: %+v", entry)
	}
	// The audit entry for the same request carries the same request id and
	// a measured duration — the correlation the issue asks for.
	found := false
	for _, e := range db.Audit() {
		if e.ReqID == entry.ReqID {
			found = true
			if e.Action != "query" || e.Duration <= 0 {
				t.Errorf("correlated audit entry wrong: %+v", e)
			}
		}
	}
	if !found {
		t.Errorf("no audit entry with req id %q", entry.ReqID)
	}
}
