// Package server exposes a secure XML database over HTTP — the deployment
// form factor the paper attributes to earlier models (§2: "designed to be
// implemented as extensions to existing web servers"), here with this
// paper's semantics: every request runs as the authenticated user, reads
// answer from the user's view, writes go through the §4.4.2 access
// controls.
//
// Endpoints (user = HTTP Basic Auth username; this demo layer performs
// identification, not authentication — wire a real verifier in front):
//
//	GET  /view                    the user's authorized view (XML)
//	GET  /query?xpath=EXPR        node results (text/plain, one per line)
//	GET  /value?xpath=EXPR        atomic result of EXPR
//	POST /update                  an <xupdate:modifications> document
//	POST /transform               an XSLT stylesheet, run as the user (§5)
//	GET  /analyze                 static policy analysis (JSON; ?format=text)
//	GET  /healthz                 liveness, database stats
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"securexml/internal/core"
)

// maxBody bounds update request bodies (1 MiB).
const maxBody = 1 << 20

// Server is an http.Handler over one Database.
type Server struct {
	db  *core.Database
	mux *http.ServeMux
}

// New builds the handler.
func New(db *core.Database) *Server {
	s := &Server{db: db, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /view", s.withSession(s.handleView))
	s.mux.HandleFunc("GET /query", s.withSession(s.handleQuery))
	s.mux.HandleFunc("GET /value", s.withSession(s.handleValue))
	s.mux.HandleFunc("POST /update", s.withSession(s.handleUpdate))
	s.mux.HandleFunc("POST /transform", s.withSession(s.handleTransform))
	s.mux.HandleFunc("GET /analyze", s.withSession(s.handleAnalyze))
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// withSession resolves the request user into a database session.
func (s *Server) withSession(h func(http.ResponseWriter, *http.Request, *core.Session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		user, _, ok := r.BasicAuth()
		if !ok || user == "" {
			w.Header().Set("WWW-Authenticate", `Basic realm="securexml"`)
			http.Error(w, "authentication required", http.StatusUnauthorized)
			return
		}
		session, err := s.db.Session(user)
		if err != nil {
			if errors.Is(err, core.ErrUnknownUser) || errors.Is(err, core.ErrNotUser) {
				http.Error(w, err.Error(), http.StatusForbidden)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		h(w, r, session)
	}
}

func (s *Server) handleView(w http.ResponseWriter, r *http.Request, session *core.Session) {
	xml, err := session.ViewXML()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	io.WriteString(w, xml)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, session *core.Session) {
	expr := r.URL.Query().Get("xpath")
	if expr == "" {
		http.Error(w, "missing xpath parameter", http.StatusBadRequest)
		return
	}
	results, err := session.Query(expr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, res := range results {
		fmt.Fprintf(w, "%s\t%s\t%s\n", res.Path, res.Kind, strings.ReplaceAll(res.Value, "\n", " "))
	}
}

func (s *Server) handleValue(w http.ResponseWriter, r *http.Request, session *core.Session) {
	expr := r.URL.Query().Get("xpath")
	if expr == "" {
		http.Error(w, "missing xpath parameter", http.StatusBadRequest)
		return
	}
	v, err := session.QueryValue(expr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, v.Str())
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request, session *core.Session) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxBody {
		http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		return
	}
	results, err := session.Apply(string(body))
	if err != nil {
		// Parse errors and hard failures; privilege refusals are not errors.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for i, res := range results {
		fmt.Fprintf(w, "op %d: selected=%d applied=%d created=%d removed=%d skipped=%d\n",
			i+1, res.Selected, res.Applied, res.Created, res.Removed, len(res.Skipped))
		for _, sk := range res.Skipped {
			fmt.Fprintf(w, "  skipped: %s\n", sk.Reason)
		}
	}
}

func (s *Server) handleTransform(w http.ResponseWriter, r *http.Request, session *core.Session) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxBody {
		http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		return
	}
	out, err := session.Transform(string(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	io.WriteString(w, out)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request, _ *core.Session) {
	rep := s.db.AnalyzePolicy()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, rep.Text())
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := json.NewEncoder(w).Encode(rep); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	st := s.db.Stats()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok nodes=%d rules=%d users=%d roles=%d version=%d\n",
		st.Nodes, st.Rules, st.Users, st.Roles, st.DocVersion)
}
