// Package server exposes a secure XML database over HTTP — the deployment
// form factor the paper attributes to earlier models (§2: "designed to be
// implemented as extensions to existing web servers"), here with this
// paper's semantics: every request runs as the authenticated user, reads
// answer from the user's view, writes go through the §4.4.2 access
// controls.
//
// Endpoints (user = HTTP Basic Auth username; this demo layer performs
// identification, not authentication — wire a real verifier in front):
//
//	GET  /view                    the user's authorized view (XML)
//	GET  /query?xpath=EXPR        node results (text/plain, one per line)
//	GET  /value?xpath=EXPR        atomic result of EXPR
//	POST /update                  an <xupdate:modifications> document
//	POST /transform               an XSLT stylesheet, run as the user (§5)
//	GET  /explain?xpath=EXPR      axiom-14 decision provenance per node (JSON)
//	GET  /analyze                 static policy analysis (JSON; ?format=text)
//	POST /warm                    pre-materialize all users' views (?workers=N)
//	GET  /healthz                 liveness, database stats
//	GET  /traces                  recent request trace summaries (JSON)
//	GET  /trace/{id}              one trace's full span tree (JSON)
//	GET  /metrics                 telemetry registry, Prometheus text format
//	GET  /debug/vars              telemetry snapshot + runtime stats (expvar)
//	GET  /debug/pprof/...         profiling (only with WithPprof)
//
// Every request is assigned an X-Request-Id, carried through the session
// context into the database audit log, and (with WithAccessLog) emitted as
// one structured JSON access-log line.
package server

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"securexml/internal/access"
	"securexml/internal/core"
	"securexml/internal/obs"
	"securexml/internal/xpath"
)

// maxBody bounds update request bodies (1 MiB).
const maxBody = 1 << 20

// defaultSlowTrace is the threshold above which a finished request trace
// is logged whole through the access logger.
const defaultSlowTrace = 500 * time.Millisecond

// Server is an http.Handler over one Database.
type Server struct {
	db         *core.Database
	mux        *http.ServeMux
	reg        *obs.Registry
	tracer     *obs.Tracer
	slowTrace  time.Duration
	accessLog  *slog.Logger
	pprof      bool
	forcedTier core.Tier
}

// Option configures the server.
type Option func(*Server)

// WithPprof mounts net/http/pprof under /debug/pprof/. Off by default:
// profiles expose internals and should be an explicit operator decision.
func WithPprof() Option {
	return func(s *Server) { s.pprof = true }
}

// WithAccessLog emits one structured JSON line per request (request ID,
// user, endpoint, status, duration) to w.
func WithAccessLog(w io.Writer) Option {
	return func(s *Server) {
		s.accessLog = slog.New(slog.NewJSONHandler(w, nil))
	}
}

// WithSlowTraceThreshold sets the latency above which finished request
// traces are logged whole (span tree included) through the access log.
// Zero disables slow-trace logging; the default is 500ms.
func WithSlowTraceThreshold(d time.Duration) Option {
	return func(s *Server) { s.slowTrace = d }
}

// WithForcedTier pins every /query and /value request to one read-ladder
// tier instead of the normal descent (A/B debugging and benchmarking). A
// query the pinned tier cannot serve fails with 409 Conflict rather than
// falling through; the served tier is still reported in X-Query-Tier.
func WithForcedTier(t core.Tier) Option {
	return func(s *Server) { s.forcedTier = t }
}

// New builds the handler.
func New(db *core.Database, opts ...Option) *Server {
	s := &Server{db: db, mux: http.NewServeMux(), reg: obs.Default(), slowTrace: defaultSlowTrace, forcedTier: core.TierAuto}
	for _, o := range opts {
		o(s)
	}
	s.tracer = obs.NewTracer(0, s.slowTrace, s.accessLog)
	s.reg.Help("xmlsec_http_requests_total", "HTTP requests by endpoint and status class.")
	s.reg.Help("xmlsec_http_request_duration_seconds", "HTTP request latency by endpoint.")
	s.reg.Help(obs.StageMetric, "Access-control pipeline stage latency.")
	s.reg.PublishExpvar("xmlsec")

	s.handle("GET /view", "view", s.withSession(s.handleView))
	s.handle("GET /query", "query", s.withSession(s.handleQuery))
	s.handle("GET /value", "value", s.withSession(s.handleValue))
	s.handle("POST /update", "update", s.withSession(s.handleUpdate))
	s.handle("POST /transform", "transform", s.withSession(s.handleTransform))
	s.handle("GET /explain", "explain", s.withSession(s.handleExplain))
	s.handle("GET /analyze", "analyze", s.withSession(s.handleAnalyze))
	s.handle("POST /warm", "warm", s.handleWarm)
	s.handle("GET /healthz", "healthz", s.handleHealth)
	// The trace endpoints bypass the tracing middleware: reading the trace
	// ring must not itself append traces to it.
	s.mux.HandleFunc("GET /traces", s.handleTraces)
	s.mux.HandleFunc("GET /trace/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	if s.pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handle mounts h behind the telemetry middleware: request ID generation
// (X-Request-Id response header + context), status capture, per-endpoint
// request counters by status class, latency histogram, in-flight gauge and
// the structured access log.
func (s *Server) handle(pattern, endpoint string, h http.HandlerFunc) {
	inFlight := s.reg.Gauge("xmlsec_http_in_flight")
	hist := s.reg.Histogram("xmlsec_http_request_duration_seconds", obs.LatencyBuckets,
		"endpoint", endpoint)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		reqID := obs.NewRequestID()
		ctx := obs.WithRequestID(r.Context(), reqID)
		// Every request gets a trace rooted at its endpoint span; the trace
		// ID is the request ID, so X-Request-Id doubles as the /trace/{id}
		// key.
		ctx, t := s.tracer.StartTrace(ctx, endpoint)
		// The handler span observes the endpoint latency histogram from
		// inside the trace, so the series' max-latency exemplar carries
		// this trace's ID (/metrics p99 outliers link to /trace/{id}).
		ctx, sp := obs.StartSpanCtx(ctx, "http_handler", hist)
		r = r.WithContext(ctx)
		w.Header().Set("X-Request-Id", reqID)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		inFlight.Add(1)
		h(rec, r)
		d := sp.End()
		inFlight.Add(-1)
		t.Annotate("status", statusClass(rec.status))
		t.Finish()
		s.reg.Counter("xmlsec_http_requests_total",
			"endpoint", endpoint, "status", statusClass(rec.status)).Inc()
		if s.accessLog != nil {
			user, _, _ := r.BasicAuth()
			s.accessLog.Info("request",
				"req_id", reqID,
				"user", user,
				"method", r.Method,
				"path", r.URL.Path,
				"endpoint", endpoint,
				"status", rec.status,
				"duration_us", d.Microseconds(),
			)
		}
	})
}

// statusClass buckets an HTTP status into its class for the request
// counter. Every branch returns a literal so the status label set is
// compile-time bounded (xmlsec-vet obslabel).
func statusClass(status int) string {
	switch status / 100 {
	case 1:
		return "1xx"
	case 2:
		return "2xx"
	case 3:
		return "3xx"
	case 4:
		return "4xx"
	case 5:
		return "5xx"
	default:
		return "other"
	}
}

// statusRecorder captures the response status for metrics and logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// httpError writes err with the request ID appended, so a client-side
// report can be correlated with the audit log and access log.
func (s *Server) httpError(w http.ResponseWriter, r *http.Request, err error, status int) {
	msg := err.Error()
	if id := obs.RequestID(r.Context()); id != "" {
		msg += " (request " + id + ")"
	}
	http.Error(w, msg, status)
}

// statusFor maps a pipeline error to an HTTP status: identity and policy
// denials are 403, XPath grammar/type errors are the client's fault (400),
// anything else falls back to fallback.
func statusFor(err error, fallback int) int {
	var syn *xpath.SyntaxError
	switch {
	case errors.Is(err, core.ErrUnknownUser),
		errors.Is(err, core.ErrNotUser),
		errors.Is(err, access.ErrUnknownUser):
		return http.StatusForbidden
	case errors.As(err, &syn), errors.Is(err, xpath.ErrNotNodeSet):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrTierUnavailable):
		// The operator pinned a tier this query cannot be served from: the
		// request conflicts with the server's -tier configuration.
		return http.StatusConflict
	}
	return fallback
}

// withSession resolves the request user into a database session. The
// middleware in handle has already assigned the request ID; if the handler
// is mounted bare (tests), one is generated here so error bodies and audit
// entries stay correlatable.
func (s *Server) withSession(h func(http.ResponseWriter, *http.Request, *core.Session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if obs.RequestID(r.Context()) == "" {
			reqID := obs.NewRequestID()
			r = r.WithContext(obs.WithRequestID(r.Context(), reqID))
			w.Header().Set("X-Request-Id", reqID)
		}
		user, _, ok := r.BasicAuth()
		if !ok || user == "" {
			w.Header().Set("WWW-Authenticate", `Basic realm="securexml"`)
			s.httpError(w, r, errors.New("authentication required"), http.StatusUnauthorized)
			return
		}
		// Shared per-user sessions: every request for a user hits the same
		// view cache, so one cold materialization (or a warm-up) serves the
		// whole connection population.
		session, err := s.db.SharedSession(user)
		if err != nil {
			s.httpError(w, r, err, statusFor(err, http.StatusInternalServerError))
			return
		}
		h(w, r, session)
	}
}

func (s *Server) handleView(w http.ResponseWriter, r *http.Request, session *core.Session) {
	xml, err := session.ViewXMLCtx(r.Context())
	if err != nil {
		s.httpError(w, r, err, statusFor(err, http.StatusInternalServerError))
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	io.WriteString(w, xml)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, session *core.Session) {
	expr := r.URL.Query().Get("xpath")
	if expr == "" {
		s.httpError(w, r, errors.New("missing xpath parameter"), http.StatusBadRequest)
		return
	}
	results, tier, err := session.QueryTierCtx(r.Context(), expr, s.forcedTier)
	if err != nil {
		s.httpError(w, r, err, statusFor(err, http.StatusBadRequest))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Query-Tier", tier.String())
	for _, res := range results {
		fmt.Fprintf(w, "%s\t%s\t%s\n", res.Path, res.Kind, strings.ReplaceAll(res.Value, "\n", " "))
	}
}

func (s *Server) handleValue(w http.ResponseWriter, r *http.Request, session *core.Session) {
	expr := r.URL.Query().Get("xpath")
	if expr == "" {
		s.httpError(w, r, errors.New("missing xpath parameter"), http.StatusBadRequest)
		return
	}
	v, tier, err := session.QueryValueTierCtx(r.Context(), expr, s.forcedTier)
	if err != nil {
		s.httpError(w, r, err, statusFor(err, http.StatusBadRequest))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Query-Tier", tier.String())
	fmt.Fprintln(w, v.Str())
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request, session *core.Session) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		s.httpError(w, r, err, http.StatusBadRequest)
		return
	}
	if len(body) > maxBody {
		s.httpError(w, r, errors.New("request body too large"), http.StatusRequestEntityTooLarge)
		return
	}
	results, err := session.ApplyCtx(r.Context(), string(body))
	if err != nil {
		// Parse errors and hard failures; privilege refusals are not errors.
		s.httpError(w, r, err, statusFor(err, http.StatusBadRequest))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for i, res := range results {
		fmt.Fprintf(w, "op %d: selected=%d applied=%d created=%d removed=%d skipped=%d\n",
			i+1, res.Selected, res.Applied, res.Created, res.Removed, len(res.Skipped))
		for _, sk := range res.Skipped {
			fmt.Fprintf(w, "  skipped: %s\n", sk.Reason)
		}
	}
}

func (s *Server) handleTransform(w http.ResponseWriter, r *http.Request, session *core.Session) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		s.httpError(w, r, err, http.StatusBadRequest)
		return
	}
	if len(body) > maxBody {
		s.httpError(w, r, errors.New("request body too large"), http.StatusRequestEntityTooLarge)
		return
	}
	out, err := session.TransformCtx(r.Context(), string(body))
	if err != nil {
		s.httpError(w, r, err, statusFor(err, http.StatusBadRequest))
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	io.WriteString(w, out)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request, _ *core.Session) {
	// ?fix=1 adds repair synthesis: the response switches to the canonical
	// findings schema (internal/findings) with a repairs array, the same
	// shape xmlsec-lint -fix -json emits.
	if r.URL.Query().Get("fix") == "1" {
		rr := s.db.PlanRepairsCtx(r.Context())
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, rr.Canonical().Text())
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := json.NewEncoder(w).Encode(rr.Canonical()); err != nil {
			s.httpError(w, r, err, http.StatusInternalServerError)
		}
		return
	}
	rep := s.db.AnalyzePolicy()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, rep.Text())
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := json.NewEncoder(w).Encode(rep); err != nil {
		s.httpError(w, r, err, http.StatusInternalServerError)
	}
}

// handleWarm pre-materializes every user's view through the bounded warm
// pool (core.WarmSessions), so the fleet's first real requests hit warm
// caches. Operator endpoint: no auth beyond reachability, like /analyze.
func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	workers := 0
	if q := r.URL.Query().Get("workers"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			s.httpError(w, r, fmt.Errorf("invalid workers parameter %q", q), http.StatusBadRequest)
			return
		}
		workers = n
	}
	warmed, err := s.db.WarmSessions(r.Context(), nil, workers)
	if err != nil {
		s.httpError(w, r, err, statusFor(err, http.StatusInternalServerError))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(map[string]int{"warmed": warmed})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	st := s.db.Stats()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok nodes=%d rules=%d users=%d roles=%d version=%d\n",
		st.Nodes, st.Rules, st.Users, st.Roles, st.DocVersion)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// handleExplain re-derives the axiom-14 decision provenance for every node
// the xpath expression matches on the source document, as the request's
// user (GET /explain?xpath=EXPR). Diagnostic endpoint: each call costs a
// cold policy evaluation.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, session *core.Session) {
	expr := r.URL.Query().Get("xpath")
	if expr == "" {
		s.httpError(w, r, errors.New("missing xpath parameter"), http.StatusBadRequest)
		return
	}
	ex, err := session.ExplainCtx(r.Context(), expr)
	if err != nil {
		s.httpError(w, r, err, statusFor(err, http.StatusBadRequest))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := json.NewEncoder(w).Encode(ex); err != nil {
		s.httpError(w, r, err, http.StatusInternalServerError)
	}
}

// handleTraces lists recent finished traces, newest first, as summaries
// (no span trees — fetch /trace/{id} for one).
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(s.tracer.Summaries())
}

// handleTrace returns one finished trace's full span tree by its ID (the
// request's X-Request-Id).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.tracer.Get(id)
	if !ok {
		s.httpError(w, r, fmt.Errorf("no trace %q (ring keeps the most recent traces only)", id), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(t.Export())
}
