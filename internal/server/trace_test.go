package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"securexml/internal/obs"
)

// traceExport mirrors the /trace/{id} payload shape for decoding.
type traceExport struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	DurNS int64  `json:"dur_ns"`
	Spans int    `json:"spans"`
	Root  *struct {
		Name     string            `json:"name"`
		Attrs    map[string]string `json:"attrs"`
		Children []json.RawMessage `json:"children"`
	} `json:"root"`
}

func TestTraceEndpoints(t *testing.T) {
	ts := testServer(t)

	// A request produces a trace whose ID is the response's X-Request-Id.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/view", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.SetBasicAuth("laporte", "")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("no X-Request-Id header")
	}

	// /traces lists it, newest first.
	code, body := get(t, ts, "", "/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces = %d: %s", code, body)
	}
	var sums []traceExport
	if err := json.Unmarshal([]byte(body), &sums); err != nil {
		t.Fatalf("/traces not JSON: %v\n%s", err, body)
	}
	if len(sums) == 0 || sums[0].ID != reqID || sums[0].Name != "view" {
		t.Fatalf("/traces head = %+v, want trace %s for endpoint view", sums, reqID)
	}
	if sums[0].Root != nil {
		t.Fatal("summaries must not carry span trees")
	}

	// /trace/{id} returns the full tree with pipeline child spans.
	code, body = get(t, ts, "", "/trace/"+reqID)
	if code != http.StatusOK {
		t.Fatalf("/trace/%s = %d: %s", reqID, code, body)
	}
	var full traceExport
	if err := json.Unmarshal([]byte(body), &full); err != nil {
		t.Fatalf("/trace not JSON: %v\n%s", err, body)
	}
	if full.ID != reqID || full.Root == nil || full.Root.Name != "view" {
		t.Fatalf("trace export: %+v", full)
	}
	if full.Root.Attrs["status"] != "2xx" {
		t.Fatalf("root status attr = %q, want 2xx", full.Root.Attrs["status"])
	}
	if full.Spans < 3 || len(full.Root.Children) == 0 {
		t.Fatalf("expected pipeline child spans, got %d spans", full.Spans)
	}
	if !strings.Contains(body, "session_view") {
		t.Fatalf("trace tree missing session_view span:\n%s", body)
	}

	// Unknown IDs are 404; the trace endpoints themselves never trace.
	if code, _ := get(t, ts, "", "/trace/nope"); code != http.StatusNotFound {
		t.Fatalf("/trace/nope = %d, want 404", code)
	}
	_, body = get(t, ts, "", "/traces")
	if strings.Contains(body, `"name":"traces"`) {
		t.Fatal("reading /traces must not record traces of itself")
	}

	// The /metrics exposition links the endpoint series to a trace ID.
	_, metrics := get(t, ts, "", "/metrics")
	if !strings.Contains(metrics, "# EXEMPLAR xmlsec_http_request_duration_seconds") ||
		!strings.Contains(metrics, "trace_id=") {
		t.Fatalf("/metrics missing latency exemplar:\n%s", metrics[:min(len(metrics), 600)])
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, "beaufort", "/explain?xpath="+
		"%2F%2Fdiagnosis%2Ftext%28%29") // //diagnosis/text()
	if code != http.StatusOK {
		t.Fatalf("/explain = %d: %s", code, body)
	}
	var ex struct {
		User       string `json:"user"`
		Consistent bool   `json:"consistent"`
		Nodes      []struct {
			Visibility string `json:"visibility"`
			Origin     string `json:"origin"`
			Privileges []struct {
				Privilege string `json:"privilege"`
				Granted   bool   `json:"granted"`
			} `json:"privileges"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal([]byte(body), &ex); err != nil {
		t.Fatalf("/explain not JSON: %v\n%s", err, body)
	}
	if ex.User != "beaufort" || !ex.Consistent || len(ex.Nodes) != 2 {
		t.Fatalf("explain payload: %+v", ex)
	}
	for _, n := range ex.Nodes {
		if n.Visibility != "restricted" {
			t.Fatalf("secretary diagnosis verdict = %q, want restricted", n.Visibility)
		}
	}

	if code, _ := get(t, ts, "beaufort", "/explain"); code != http.StatusBadRequest {
		t.Fatal("missing xpath must be 400")
	}
	if code, _ := get(t, ts, "beaufort", "/explain?xpath=%2F%2F%2F"); code != http.StatusBadRequest {
		t.Fatal("bad xpath must be 400")
	}
	if code, _ := get(t, ts, "", "/explain?xpath=%2F"); code != http.StatusUnauthorized {
		t.Fatal("explain requires a user")
	}
}

func TestSlowTraceThresholdOption(t *testing.T) {
	var buf bytes.Buffer
	db := testServerDB(t)
	srv := New(db, WithAccessLog(&buf), WithSlowTraceThreshold(time.Nanosecond))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	if code, body := get(t, ts, "laporte", "/view"); code != http.StatusOK {
		t.Fatalf("/view = %d: %s", code, body)
	}
	if !strings.Contains(buf.String(), "slow trace") {
		t.Fatalf("slow trace not logged through the access logger:\n%s", buf.String())
	}
	// The default tracer stays untouched — the server holds its own.
	if obs.DefaultTracer() != nil {
		t.Fatal("server must not install a process default tracer")
	}
}
