package policyanalysis

import (
	"fmt"
	"sort"
	"strings"

	"securexml/internal/findings"
	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xpath"
)

// Severity ranks findings. Errors are policies that cannot mean what they
// say (unparseable paths, unknown subjects); warnings are rules that are
// provably inert or that weaken the policy in ways the paper's dynamic
// semantics silently tolerates.
type Severity int

// Severities in ascending order.
const (
	Info Severity = iota
	Warning
	Error
)

// String renders the severity lowercase, as used in text and JSON output.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// MarshalJSON encodes the severity as its string form.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Finding codes. Stable: CI configurations and tests match on them.
const (
	CodeBadPath            = "bad-path"            // rule path does not compile
	CodeUnreachableSubject = "unreachable-subject" // rule subject absent from hierarchy
	CodeEmptyPattern       = "empty-pattern"       // path can never select a node
	CodeDeadRule           = "dead-rule"           // shadowed for every user in scope
	CodeConflictOverlap    = "conflict-overlap"    // accept reopens an earlier deny (axiom 14)
	CodeInsertInvisible    = "write-insert-invisible"
	CodeUnselectableTarget = "write-unselectable-target"
	CodeCovertChannel      = "covert-channel-hazard"
)

// Finding is one analyzer result, anchored on a rule by its priority
// (priorities are unique within a policy).
type Finding struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Rule     string   `json:"rule"`
	Priority int64    `json:"priority"`
	Message  string   `json:"message"`
	// Related lists priorities of other rules involved (shadowers, the
	// reopened deny, the winning read label).
	Related []int64 `json:"related,omitempty"`
	// Subjects lists the users or roles the finding applies to.
	Subjects []string `json:"subjects,omitempty"`
}

// Report is the full analysis result.
type Report struct {
	Rules    int       `json:"rules"`
	Findings []Finding `json:"findings"`
}

// Max returns the highest severity present, or Info for a clean report.
func (rep *Report) Max() Severity {
	max := Info
	for _, f := range rep.Findings {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max
}

// HasErrors reports whether any finding is an Error.
func (rep *Report) HasErrors() bool { return rep.Max() >= Error }

// HasWarnings reports whether any finding is Warning or worse.
func (rep *Report) HasWarnings() bool { return rep.Max() >= Warning }

// Canonical converts the report to the shared diagnostics schema of
// internal/findings — the one JSON format CI consumes from both
// xmlsec-lint and xmlsec-vet.
func (rep *Report) Canonical() *findings.Report {
	out := &findings.Report{Tool: "xmlsec-lint", Analyzed: rep.Rules}
	for _, f := range rep.Findings {
		out.Findings = append(out.Findings, findings.Finding{
			Tool:     "xmlsec-lint",
			Pass:     "policy",
			Code:     f.Code,
			Severity: findings.Severity(f.Severity),
			Message:  f.Message,
			Rule:     f.Rule,
			Priority: f.Priority,
			Related:  f.Related,
			Subjects: f.Subjects,
		})
	}
	return out
}

// Text renders the report for terminals.
func (rep *Report) Text() string {
	var b strings.Builder
	if len(rep.Findings) == 0 {
		fmt.Fprintf(&b, "%d rules analyzed: no findings\n", rep.Rules)
		return b.String()
	}
	fmt.Fprintf(&b, "%d rules analyzed: %d finding(s)\n", rep.Rules, len(rep.Findings))
	for _, f := range rep.Findings {
		fmt.Fprintf(&b, "%-7s %s rule@%d: %s", f.Severity, f.Code, f.Priority, f.Message)
		if len(f.Related) > 0 {
			parts := make([]string, len(f.Related))
			for i, p := range f.Related {
				parts[i] = fmt.Sprintf("@%d", p)
			}
			fmt.Fprintf(&b, " (related: %s)", strings.Join(parts, ", "))
		}
		if len(f.Subjects) > 0 {
			fmt.Fprintf(&b, " [%s]", strings.Join(f.Subjects, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ruleInfo is the per-rule working state of one analysis.
type ruleInfo struct {
	rule  policy.Rule
	pat   *xpath.Pattern
	users []string // users in the rule's isa-closure scope, sorted
	empty bool     // pattern provably selects nothing
}

// Analyze runs every pass over a live policy.
func Analyze(h *subject.Hierarchy, pol *policy.Policy) *Report {
	rules := make([]policy.Rule, 0, pol.Len())
	for _, r := range pol.Rules() {
		rules = append(rules, *r)
	}
	return AnalyzeRules(h, rules)
}

// AnalyzeRules runs every pass over raw rules (as loaded from a snapshot,
// which need not have passed policy.Add validation).
func AnalyzeRules(h *subject.Hierarchy, rules []policy.Rule) *Report {
	rep := &Report{Rules: len(rules), Findings: []Finding{}}
	infos := make([]*ruleInfo, 0, len(rules))
	for _, r := range rules {
		c, err := xpath.Compile(r.Path)
		if err != nil {
			rep.add(Finding{
				Code: CodeBadPath, Severity: Error, Rule: r.String(), Priority: r.Priority,
				Message: fmt.Sprintf("path %q does not compile: %v", r.Path, err),
			})
			continue
		}
		if !h.Exists(r.Subject) {
			rep.add(Finding{
				Code: CodeUnreachableSubject, Severity: Error, Rule: r.String(), Priority: r.Priority,
				Message: fmt.Sprintf("subject %q is not in the hierarchy", r.Subject),
			})
			continue
		}
		ri := &ruleInfo{rule: r, pat: c.Pattern(), users: usersInScope(h, r.Subject)}
		ri.empty = !satisfiable(ri.pat)
		if ri.empty {
			rep.add(Finding{
				Code: CodeEmptyPattern, Severity: Warning, Rule: r.String(), Priority: r.Priority,
				Message: fmt.Sprintf("path %q can never select a node", r.Path),
			})
		}
		infos = append(infos, ri)
	}
	deadRulePass(rep, infos)
	conflictOverlapPass(rep, infos)
	writeInsertPass(rep, infos)
	writeTargetPass(rep, infos)
	covertChannelPass(rep, infos)
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		if rep.Findings[i].Priority != rep.Findings[j].Priority {
			return rep.Findings[i].Priority < rep.Findings[j].Priority
		}
		return rep.Findings[i].Code < rep.Findings[j].Code
	})
	return rep
}

func (rep *Report) add(f Finding) { rep.Findings = append(rep.Findings, f) }

// usersInScope lists the users the rule applies to: every user whose
// isa-closure reaches the rule's subject (axiom 13).
func usersInScope(h *subject.Hierarchy, subj string) []string {
	var users []string
	for _, u := range h.Users() {
		if h.ISA(u, subj) {
			users = append(users, u)
		}
	}
	sort.Strings(users)
	return users
}

// deadRulePass flags rules that can never decide any authorization: either
// no user is in the rule's scope, or for every user in scope some
// later-priority same-privilege rule with an exact pattern contains this
// rule's pattern, so axiom 14 always prefers the later rule. Soundness:
// the shadower must be Exact (an over-approximated shadower might not
// really cover every node), while the victim may be inexact — its
// over-approximation only widens what must be contained.
func deadRulePass(rep *Report, infos []*ruleInfo) {
	for i, ri := range infos {
		if ri.empty {
			continue // already reported; also vacuously dead
		}
		if len(ri.users) == 0 {
			rep.add(Finding{
				Code: CodeDeadRule, Severity: Warning, Rule: ri.rule.String(), Priority: ri.rule.Priority,
				Message: fmt.Sprintf("no user is in scope of subject %q; the rule can never apply", ri.rule.Subject),
			})
			continue
		}
		shadowers := map[int64]bool{}
		dead := true
		for _, u := range ri.users {
			found := false
			for _, rj := range infos {
				if rj == infos[i] || rj.rule.Priority <= ri.rule.Priority ||
					rj.rule.Privilege != ri.rule.Privilege || !rj.pat.Exact {
					continue
				}
				if !userInScope(rj, u) {
					continue
				}
				if contains(rj.pat, ri.pat) {
					shadowers[rj.rule.Priority] = true
					found = true
					break
				}
			}
			if !found {
				dead = false
				break
			}
		}
		if dead {
			rep.add(Finding{
				Code: CodeDeadRule, Severity: Warning, Rule: ri.rule.String(), Priority: ri.rule.Priority,
				Message:  "every user in scope is decided by later rules covering this rule's whole region",
				Related:  sortedPriorities(shadowers),
				Subjects: ri.users,
			})
		}
	}
}

func userInScope(ri *ruleInfo, user string) bool {
	for _, u := range ri.users {
		if u == user {
			return true
		}
	}
	return false
}

func sortedPriorities(set map[int64]bool) []int64 {
	out := make([]int64, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// conflictOverlapPass flags accept rules that reopen an earlier deny of
// the same privilege on an overlapping region for a shared user: by axiom
// 14 the later accept wins there, which silently weakens the deny. The
// opposite order (deny after accept) is the model's idiomatic refinement
// pattern — e.g. the paper's rules 10/11 — and is not reported.
func conflictOverlapPass(rep *Report, infos []*ruleInfo) {
	for _, acc := range infos {
		if acc.rule.Effect != policy.Accept || acc.empty {
			continue
		}
		for _, den := range infos {
			if den.rule.Effect != policy.Deny || den.empty ||
				den.rule.Privilege != acc.rule.Privilege ||
				den.rule.Priority >= acc.rule.Priority {
				continue
			}
			common := commonUsers(acc, den)
			if len(common) == 0 || !overlapAll(acc.pat, den.pat) {
				continue
			}
			rep.add(Finding{
				Code: CodeConflictOverlap, Severity: Warning, Rule: acc.rule.String(), Priority: acc.rule.Priority,
				Message: fmt.Sprintf("accept overlaps and postdates deny @%d for privilege %s; by axiom 14 the accept wins on the overlap",
					den.rule.Priority, acc.rule.Privilege),
				Related:  []int64{den.rule.Priority},
				Subjects: common,
			})
		}
	}
}

func commonUsers(a, b *ruleInfo) []string {
	var out []string
	for _, u := range a.users {
		if userInScope(b, u) {
			out = append(out, u)
		}
	}
	return out
}

// visible reports whether some user in scope of w has an accept rule for
// priv overlapping w's region. Because patterns over-approximate, a false
// answer proves the regions are truly disjoint for every user in scope.
func anyVisibilityOverlap(w *ruleInfo, infos []*ruleInfo, privs ...policy.Privilege) bool {
	for _, a := range infos {
		if a.rule.Effect != policy.Accept || a.empty {
			continue
		}
		ok := false
		for _, p := range privs {
			if a.rule.Privilege == p {
				ok = true
				break
			}
		}
		if !ok || len(commonUsers(w, a)) == 0 {
			continue
		}
		if overlapAll(w.pat, a.pat) {
			return true
		}
	}
	return false
}

// writeInsertPass flags insert grants whose whole region is invisible to
// every user in scope (no overlapping read or position accept): inserts
// are resolved against the user's view (axiom 20 side conditions), so a
// never-visible parent region means the grant can never be exercised.
// The document node is always present in a view, so patterns that may
// match the root are skipped.
func writeInsertPass(rep *Report, infos []*ruleInfo) {
	for _, w := range infos {
		if w.rule.Effect != policy.Accept || w.rule.Privilege != policy.Insert ||
			w.empty || len(w.users) == 0 {
			continue
		}
		if overlapAll(w.pat, rootPattern()) {
			continue
		}
		if !anyVisibilityOverlap(w, infos, policy.Read, policy.Position) {
			rep.add(Finding{
				Code: CodeInsertInvisible, Severity: Warning, Rule: w.rule.String(), Priority: w.rule.Priority,
				Message:  "insert granted under a region no user in scope can ever see in a view; the grant can never be exercised",
				Subjects: w.users,
			})
		}
	}
}

// writeTargetPass flags update and delete grants whose targets can never
// be selected on any view of a user in scope. Updates (rename and child
// renaming, axioms 21–22) additionally require read on the target — a
// RESTRICTED node cannot be renamed — so update needs an overlapping read
// accept; deletes only need the target present in the view, so read or
// position suffices.
func writeTargetPass(rep *Report, infos []*ruleInfo) {
	for _, w := range infos {
		if w.rule.Effect != policy.Accept || w.empty || len(w.users) == 0 {
			continue
		}
		switch w.rule.Privilege {
		case policy.Update:
			if !anyVisibilityOverlap(w, infos, policy.Read) {
				rep.add(Finding{
					Code: CodeUnselectableTarget, Severity: Warning, Rule: w.rule.String(), Priority: w.rule.Priority,
					Message:  "update granted on a region no user in scope can ever read; renames there can never succeed",
					Subjects: w.users,
				})
			}
		case policy.Delete:
			if overlapAll(w.pat, rootPattern()) {
				continue
			}
			if !anyVisibilityOverlap(w, infos, policy.Read, policy.Position) {
				rep.add(Finding{
					Code: CodeUnselectableTarget, Severity: Warning, Rule: w.rule.String(), Priority: w.rule.Priority,
					Message:  "delete granted on a region no user in scope can ever see in a view; the grant can never be exercised",
					Subjects: w.users,
				})
			}
		}
	}
}

// covertChannelPass flags the §2.2 interplay: a region where a user holds
// position (so the node appears, RESTRICTED) together with update, while
// the latest-priority read rule overlapping that region denies read (or no
// read rule reaches it). Such a user can rename-probe content they are not
// allowed to read.
func covertChannelPass(rep *Report, infos []*ruleInfo) {
	type pairKey struct{ pos, upd int64 }
	hits := map[pairKey][]string{}
	for _, pos := range infos {
		if pos.rule.Effect != policy.Accept || pos.rule.Privilege != policy.Position || pos.empty {
			continue
		}
		for _, upd := range infos {
			if upd.rule.Effect != policy.Accept || upd.rule.Privilege != policy.Update || upd.empty {
				continue
			}
			common := commonUsers(pos, upd)
			if len(common) == 0 || !overlapAll(pos.pat, upd.pat) {
				continue
			}
			for _, u := range common {
				var best *ruleInfo
				for _, rd := range infos {
					if rd.rule.Privilege != policy.Read || rd.empty || !userInScope(rd, u) {
						continue
					}
					if !overlapAll(pos.pat, upd.pat, rd.pat) {
						continue
					}
					if best == nil || rd.rule.Priority > best.rule.Priority {
						best = rd
					}
				}
				if best == nil || best.rule.Effect == policy.Deny {
					k := pairKey{pos.rule.Priority, upd.rule.Priority}
					hits[k] = append(hits[k], u)
				}
			}
		}
	}
	keys := make([]pairKey, 0, len(hits))
	for k := range hits {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pos != keys[j].pos {
			return keys[i].pos < keys[j].pos
		}
		return keys[i].upd < keys[j].upd
	})
	for _, k := range keys {
		users := hits[k]
		sort.Strings(users)
		users = dedupStrings(users)
		rep.add(Finding{
			Code: CodeCovertChannel, Severity: Warning, Priority: k.pos,
			Rule: ruleString(infos, k.pos),
			Message: fmt.Sprintf("position without read overlaps update grant @%d: users can rename-probe content they cannot read (§2.2)",
				k.upd),
			Related:  []int64{k.upd},
			Subjects: users,
		})
	}
}

func ruleString(infos []*ruleInfo, priority int64) string {
	for _, ri := range infos {
		if ri.rule.Priority == priority {
			return ri.rule.String()
		}
	}
	return ""
}

func dedupStrings(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
