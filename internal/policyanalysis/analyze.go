package policyanalysis

import (
	"fmt"
	"sort"
	"strings"

	"securexml/internal/findings"
	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xpath"
)

// Severity ranks findings. Errors are policies that cannot mean what they
// say (unparseable paths, unknown subjects, broken priority order); warnings
// are rules that are provably inert or that weaken the policy in ways the
// paper's dynamic semantics silently tolerates.
type Severity int

// Severities in ascending order.
const (
	Info Severity = iota
	Warning
	Error
)

// String renders the severity lowercase, as used in text and JSON output.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// MarshalJSON encodes the severity as its string form.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Finding codes. Stable: CI configurations and tests match on them.
const (
	CodeBadPath            = "bad-path"            // rule path does not compile
	CodeUnreachableSubject = "unreachable-subject" // rule subject absent from hierarchy
	CodeEmptyPattern       = "empty-pattern"       // path can never select a node
	CodeDeadRule           = "dead-rule"           // shadowed for every user in scope
	CodeConflictOverlap    = "conflict-overlap"    // accept reopens an earlier deny (axiom 14)
	CodeInsertInvisible    = "write-insert-invisible"
	CodeUnselectableTarget = "write-unselectable-target"
	CodeCovertChannel      = "covert-channel-hazard"
	CodePriorityCollision  = "priority-collision" // one priority on several rules
	CodePriorityDisorder   = "priority-disorder"  // snapshot order not ascending
)

// Finding is one analyzer result, anchored on a rule by its priority
// (priorities are unique within a policy; priority-collision findings are
// the one place a priority can name several rules at once).
type Finding struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Rule     string   `json:"rule"`
	Priority int64    `json:"priority"`
	Message  string   `json:"message"`
	// Related lists priorities of other rules involved (shadowers, the
	// reopened deny, the winning read label).
	Related []int64 `json:"related,omitempty"`
	// Subjects lists the users or roles the finding applies to.
	Subjects []string `json:"subjects,omitempty"`
}

// Report is the full analysis result.
type Report struct {
	Rules    int       `json:"rules"`
	Findings []Finding `json:"findings"`
}

// Max returns the highest severity present, or Info for a clean report.
func (rep *Report) Max() Severity {
	max := Info
	for _, f := range rep.Findings {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max
}

// HasErrors reports whether any finding is an Error.
func (rep *Report) HasErrors() bool { return rep.Max() >= Error }

// HasWarnings reports whether any finding is Warning or worse.
func (rep *Report) HasWarnings() bool { return rep.Max() >= Warning }

// Canonical converts the report to the shared diagnostics schema of
// internal/findings — the one JSON format CI consumes from both
// xmlsec-lint and xmlsec-vet.
func (rep *Report) Canonical() *findings.Report {
	out := &findings.Report{Tool: "xmlsec-lint", Analyzed: rep.Rules}
	for _, f := range rep.Findings {
		out.Findings = append(out.Findings, findings.Finding{
			Tool:     "xmlsec-lint",
			Pass:     "policy",
			Code:     f.Code,
			Severity: findings.Severity(f.Severity),
			Message:  f.Message,
			Rule:     f.Rule,
			Priority: f.Priority,
			Related:  f.Related,
			Subjects: f.Subjects,
		})
	}
	return out
}

// Text renders the report for terminals.
func (rep *Report) Text() string {
	var b strings.Builder
	if len(rep.Findings) == 0 {
		fmt.Fprintf(&b, "%d rules analyzed: no findings\n", rep.Rules)
		return b.String()
	}
	fmt.Fprintf(&b, "%d rules analyzed: %d finding(s)\n", rep.Rules, len(rep.Findings))
	for _, f := range rep.Findings {
		fmt.Fprintf(&b, "%-7s %s rule@%d: %s", f.Severity, f.Code, f.Priority, f.Message)
		if len(f.Related) > 0 {
			parts := make([]string, len(f.Related))
			for i, p := range f.Related {
				parts[i] = fmt.Sprintf("@%d", p)
			}
			fmt.Fprintf(&b, " (related: %s)", strings.Join(parts, ", "))
		}
		if len(f.Subjects) > 0 {
			fmt.Fprintf(&b, " [%s]", strings.Join(f.Subjects, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ruleInfo is the per-rule working state of one analysis.
type ruleInfo struct {
	rule   policy.Rule
	pat    *xpath.Pattern
	patStr string          // cached Pattern.String(), the memoization key
	key    string          // discriminator bucket (see discriminator)
	users  []string        // users in the rule's isa-closure scope, sorted
	uset   map[string]bool // same users, as a set
	index  int             // position among the analyzable rules
	empty  bool            // pattern provably selects nothing
}

// memo caches the expensive decisions of an analysis session: automata
// queries keyed by pattern strings and isa-closure scopes keyed by subject.
// Pattern- and hierarchy-level answers do not depend on the rule set, so a
// repair session shares one memo across the dozens of re-analyses it runs
// while validating candidate edits.
type memo struct {
	h          *subject.Hierarchy
	pairs      map[string]bool
	scopeUsers map[string][]string
	scopeSets  map[string]map[string]bool
}

func newMemo(h *subject.Hierarchy) *memo {
	return &memo{
		h:          h,
		pairs:      make(map[string]bool),
		scopeUsers: make(map[string][]string),
		scopeSets:  make(map[string]map[string]bool),
	}
}

// usersOf returns (and caches) the users the subject's isa-closure reaches
// (axiom 13). The returned slice and set are shared: callers must not
// mutate them.
func (m *memo) usersOf(subj string) ([]string, map[string]bool) {
	if users, ok := m.scopeUsers[subj]; ok {
		return users, m.scopeSets[subj]
	}
	var users []string
	set := map[string]bool{}
	for _, u := range m.h.Users() {
		if m.h.ISA(u, subj) {
			users = append(users, u)
			set[u] = true
		}
	}
	sort.Strings(users)
	m.scopeUsers[subj] = users
	m.scopeSets[subj] = set
	return users, set
}

// satisfiable memoizes the word-automata emptiness check.
func (m *memo) satisfiable(ri *ruleInfo) bool {
	k := "s|" + ri.patStr
	if v, ok := m.pairs[k]; ok {
		return v
	}
	v := satisfiable(ri.pat)
	m.pairs[k] = v
	return v
}

// contains memoizes pattern containment. Precondition: inner is
// satisfiable (the disjointness prescreen answers "not contained" for
// disjoint patterns, which is only sound when inner matches something).
func (m *memo) contains(outer, inner *ruleInfo) bool {
	if quickDisjoint(outer.pat, inner.pat) {
		return false
	}
	k := "c|" + outer.patStr + "|" + inner.patStr
	if v, ok := m.pairs[k]; ok {
		return v
	}
	v := contains(outer.pat, inner.pat)
	m.pairs[k] = v
	return v
}

// overlap2 memoizes pairwise pattern overlap.
func (m *memo) overlap2(a, b *ruleInfo) bool {
	if quickDisjoint(a.pat, b.pat) {
		return false
	}
	k := "o|" + a.patStr + "|" + b.patStr
	if v, ok := m.pairs[k]; ok {
		return v
	}
	v := overlapAll(a.pat, b.pat)
	m.pairs[k] = v
	return v
}

// overlap3 memoizes three-way pattern overlap.
func (m *memo) overlap3(a, b, c *ruleInfo) bool {
	if quickDisjoint(a.pat, b.pat) || quickDisjoint(a.pat, c.pat) || quickDisjoint(b.pat, c.pat) {
		return false
	}
	k := "o3|" + a.patStr + "|" + b.patStr + "|" + c.patStr
	if v, ok := m.pairs[k]; ok {
		return v
	}
	v := overlapAll(a.pat, b.pat, c.pat)
	m.pairs[k] = v
	return v
}

// overlapRoot memoizes overlap with the document-node pattern.
func (m *memo) overlapRoot(ri *ruleInfo) bool {
	k := "r|" + ri.patStr
	if v, ok := m.pairs[k]; ok {
		return v
	}
	v := overlapAll(ri.pat, rootPattern())
	m.pairs[k] = v
	return v
}

// analysis is the working state of one AnalyzeRules run: the rule infos
// plus privilege/bucket indices that keep the pairwise passes from probing
// provably-disjoint rule pairs (the discriminator prescreen is what makes
// 10k-rule corpora analyzable — per-object rules land in distinct buckets).
type analysis struct {
	m     *memo
	infos []*ruleInfo
	// byPriv[priv] lists info indices holding priv, ascending; byPrivKey
	// refines by discriminator bucket ("" = the wildcard bucket of rules
	// whose pattern is not pinned under a depth-2 name).
	byPriv    map[policy.Privilege][]int
	byPrivKey map[privKey][]int
}

type privKey struct {
	priv policy.Privilege
	key  string
}

func newAnalysis(m *memo, infos []*ruleInfo) *analysis {
	a := &analysis{
		m:         m,
		infos:     infos,
		byPriv:    make(map[policy.Privilege][]int),
		byPrivKey: make(map[privKey][]int),
	}
	for i, ri := range infos {
		p := ri.rule.Privilege
		a.byPriv[p] = append(a.byPriv[p], i)
		a.byPrivKey[privKey{p, ri.key}] = append(a.byPrivKey[privKey{p, ri.key}], i)
	}
	return a
}

// candidates returns the info indices (ascending, matching infos order)
// holding priv whose pattern could overlap a pattern in bucket key: the
// same bucket plus the wildcard bucket, or every rule of the privilege
// when key is itself the wildcard. Exclusions are sound — rules in two
// distinct non-wildcard buckets are provably disjoint (different mandatory
// element names at depth 2).
func (a *analysis) candidates(priv policy.Privilege, key string) []int {
	if key == "" {
		return a.byPriv[priv]
	}
	in := a.byPrivKey[privKey{priv, key}]
	wild := a.byPrivKey[privKey{priv, ""}]
	if len(wild) == 0 {
		return in
	}
	if len(in) == 0 {
		return wild
	}
	out := make([]int, 0, len(in)+len(wild))
	i, j := 0, 0
	for i < len(in) && j < len(wild) {
		if in[i] < wild[j] {
			out = append(out, in[i])
			i++
		} else {
			out = append(out, wild[j])
			j++
		}
	}
	out = append(out, in[i:]...)
	out = append(out, wild[j:]...)
	return out
}

// Analyze runs every pass over a live policy.
func Analyze(h *subject.Hierarchy, pol *policy.Policy) *Report {
	rules := make([]policy.Rule, 0, pol.Len())
	for _, r := range pol.Rules() {
		rules = append(rules, *r)
	}
	return AnalyzeRules(h, rules)
}

// AnalyzeRules runs every pass over raw rules (as loaded from a snapshot,
// which need not have passed policy.Add validation).
func AnalyzeRules(h *subject.Hierarchy, rules []policy.Rule) *Report {
	return analyzeRules(h, rules, newMemo(h))
}

// analyzeRules is AnalyzeRules against a caller-owned memo, so a repair
// session can share automata and scope decisions across its re-analyses.
func analyzeRules(h *subject.Hierarchy, rules []policy.Rule, m *memo) *Report {
	rep := &Report{Rules: len(rules), Findings: []Finding{}}
	priorityPass(rep, rules)
	infos := make([]*ruleInfo, 0, len(rules))
	for _, r := range rules {
		c, err := xpath.Compile(r.Path)
		if err != nil {
			rep.add(Finding{
				Code: CodeBadPath, Severity: Error, Rule: r.String(), Priority: r.Priority,
				Message: fmt.Sprintf("path %q does not compile: %v", r.Path, err),
			})
			continue
		}
		if !h.Exists(r.Subject) {
			rep.add(Finding{
				Code: CodeUnreachableSubject, Severity: Error, Rule: r.String(), Priority: r.Priority,
				Message: fmt.Sprintf("subject %q is not in the hierarchy", r.Subject),
			})
			continue
		}
		pat := c.Pattern()
		ri := &ruleInfo{rule: r, pat: pat, patStr: pat.String(), key: discriminator(pat), index: len(infos)}
		ri.users, ri.uset = m.usersOf(r.Subject)
		ri.empty = !m.satisfiable(ri)
		if ri.empty {
			rep.add(Finding{
				Code: CodeEmptyPattern, Severity: Warning, Rule: r.String(), Priority: r.Priority,
				Message: fmt.Sprintf("path %q can never select a node", r.Path),
			})
		}
		infos = append(infos, ri)
	}
	a := newAnalysis(m, infos)
	deadRulePass(rep, a)
	conflictOverlapPass(rep, a)
	writeInsertPass(rep, a)
	writeTargetPass(rep, a)
	covertChannelPass(rep, a)
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		if rep.Findings[i].Priority != rep.Findings[j].Priority {
			return rep.Findings[i].Priority < rep.Findings[j].Priority
		}
		return rep.Findings[i].Code < rep.Findings[j].Code
	})
	return rep
}

func (rep *Report) add(f Finding) { rep.Findings = append(rep.Findings, f) }

// usersInScope lists the users the rule applies to: every user whose
// isa-closure reaches the rule's subject (axiom 13).
func usersInScope(h *subject.Hierarchy, subj string) []string {
	users, _ := newMemo(h).usersOf(subj)
	return users
}

// priorityPass checks the total order the model assumes over rules ("the
// last issued command has the priority over the previous ones", §4.3).
// Policy.Add enforces strictly-ascending unique priorities, but
// AnalyzeRules accepts arbitrary slices — hand-edited or corrupted
// snapshots can carry duplicates, under which axiom 14's latest-wins merge
// is ill-defined. Duplicates are errors; a slice whose rules are merely
// stored out of ascending order still means what it says (priorities are
// explicit), so that is reported as a warning.
func priorityPass(rep *Report, rules []policy.Rule) {
	byPriority := map[int64][]int{}
	for i, r := range rules {
		byPriority[r.Priority] = append(byPriority[r.Priority], i)
	}
	prios := make([]int64, 0, len(byPriority))
	for p, idxs := range byPriority {
		if len(idxs) > 1 {
			prios = append(prios, p)
		}
	}
	sort.Slice(prios, func(i, j int) bool { return prios[i] < prios[j] })
	for _, p := range prios {
		idxs := byPriority[p]
		subjects := map[string]bool{}
		for _, i := range idxs {
			subjects[rules[i].Subject] = true
		}
		rep.add(Finding{
			Code: CodePriorityCollision, Severity: Error,
			Rule: rules[idxs[0]].String(), Priority: p,
			Message: fmt.Sprintf("priority %d is assigned to %d rules; the model assumes a total order, so their conflict resolution (axiom 14) is ill-defined",
				p, len(idxs)),
			Subjects: sortedKeys(subjects),
		})
	}
	for i := 1; i < len(rules); i++ {
		if rules[i].Priority < rules[i-1].Priority {
			rep.add(Finding{
				Code: CodePriorityDisorder, Severity: Warning,
				Rule: rules[i].String(), Priority: rules[i].Priority,
				Message: fmt.Sprintf("rule stored after priority %d; the snapshot is not in ascending priority order (harmless after load, but suggests hand-editing)",
					rules[i-1].Priority),
				Related: []int64{rules[i-1].Priority},
			})
		}
	}
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// deadRulePass flags rules that can never decide any authorization: either
// no user is in the rule's scope, or for every user in scope some
// later-priority same-privilege rule with an exact pattern contains this
// rule's pattern, so axiom 14 always prefers the later rule. Soundness:
// the shadower must be Exact (an over-approximated shadower might not
// really cover every node), while the victim may be inexact — its
// over-approximation only widens what must be contained.
func deadRulePass(rep *Report, a *analysis) {
	for _, ri := range a.infos {
		if ri.empty {
			continue // already reported; also vacuously dead
		}
		if len(ri.users) == 0 {
			rep.add(Finding{
				Code: CodeDeadRule, Severity: Warning, Rule: ri.rule.String(), Priority: ri.rule.Priority,
				Message: fmt.Sprintf("no user is in scope of subject %q; the rule can never apply", ri.rule.Subject),
			})
			continue
		}
		// Collect the later same-privilege exact rules whose pattern
		// contains the victim's, in infos order (bucket exclusions only
		// drop provably-disjoint, hence non-containing, rules).
		var shadowing []*ruleInfo
		for _, j := range a.candidates(ri.rule.Privilege, ri.key) {
			rj := a.infos[j]
			if rj == ri || rj.rule.Priority <= ri.rule.Priority || !rj.pat.Exact {
				continue
			}
			if a.m.contains(rj, ri) {
				shadowing = append(shadowing, rj)
			}
		}
		if len(shadowing) == 0 {
			continue
		}
		shadowers := map[int64]bool{}
		dead := true
		for _, u := range ri.users {
			found := false
			for _, rj := range shadowing {
				if rj.uset[u] {
					shadowers[rj.rule.Priority] = true
					found = true
					break
				}
			}
			if !found {
				dead = false
				break
			}
		}
		if dead {
			rep.add(Finding{
				Code: CodeDeadRule, Severity: Warning, Rule: ri.rule.String(), Priority: ri.rule.Priority,
				Message:  "every user in scope is decided by later rules covering this rule's whole region",
				Related:  sortedPriorities(shadowers),
				Subjects: ri.users,
			})
		}
	}
}

func sortedPriorities(set map[int64]bool) []int64 {
	out := make([]int64, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// conflictOverlapPass flags accept rules that reopen an earlier deny of
// the same privilege on an overlapping region for a shared user: by axiom
// 14 the later accept wins there, which silently weakens the deny. The
// opposite order (deny after accept) is the model's idiomatic refinement
// pattern — e.g. the paper's rules 10/11 — and is not reported.
func conflictOverlapPass(rep *Report, a *analysis) {
	for _, acc := range a.infos {
		if acc.rule.Effect != policy.Accept || acc.empty {
			continue
		}
		for _, j := range a.candidates(acc.rule.Privilege, acc.key) {
			den := a.infos[j]
			if den.rule.Effect != policy.Deny || den.empty ||
				den.rule.Priority >= acc.rule.Priority {
				continue
			}
			common := commonUsers(acc, den)
			if len(common) == 0 || !a.m.overlap2(acc, den) {
				continue
			}
			rep.add(Finding{
				Code: CodeConflictOverlap, Severity: Warning, Rule: acc.rule.String(), Priority: acc.rule.Priority,
				Message: fmt.Sprintf("accept overlaps and postdates deny @%d for privilege %s; by axiom 14 the accept wins on the overlap",
					den.rule.Priority, acc.rule.Privilege),
				Related:  []int64{den.rule.Priority},
				Subjects: common,
			})
		}
	}
}

// commonUsers intersects two scopes, preserving a's sorted order.
func commonUsers(a, b *ruleInfo) []string {
	var out []string
	small, setOf := a, b
	if len(b.users) < len(a.users) {
		// Intersection is symmetric and both user lists are sorted, so
		// iterating the smaller scope yields the same sorted result.
		small, setOf = b, a
	}
	for _, u := range small.users {
		if setOf.uset[u] {
			out = append(out, u)
		}
	}
	return out
}

// anyVisibilityOverlap reports whether some user in scope of w has an
// accept rule for one of privs overlapping w's region. Because patterns
// over-approximate, a false answer proves the regions are truly disjoint
// for every user in scope.
func anyVisibilityOverlap(a *analysis, w *ruleInfo, privs ...policy.Privilege) bool {
	for _, p := range privs {
		for _, j := range a.candidates(p, w.key) {
			acc := a.infos[j]
			if acc.rule.Effect != policy.Accept || acc.empty {
				continue
			}
			if len(commonUsers(w, acc)) == 0 {
				continue
			}
			if a.m.overlap2(w, acc) {
				return true
			}
		}
	}
	return false
}

// writeInsertPass flags insert grants whose whole region is invisible to
// every user in scope (no overlapping read or position accept): inserts
// are resolved against the user's view (axiom 20 side conditions), so a
// never-visible parent region means the grant can never be exercised.
// The document node is always present in a view, so patterns that may
// match the root are skipped.
func writeInsertPass(rep *Report, a *analysis) {
	for _, w := range a.infos {
		if w.rule.Effect != policy.Accept || w.rule.Privilege != policy.Insert ||
			w.empty || len(w.users) == 0 {
			continue
		}
		if a.m.overlapRoot(w) {
			continue
		}
		if !anyVisibilityOverlap(a, w, policy.Read, policy.Position) {
			rep.add(Finding{
				Code: CodeInsertInvisible, Severity: Warning, Rule: w.rule.String(), Priority: w.rule.Priority,
				Message:  "insert granted under a region no user in scope can ever see in a view; the grant can never be exercised",
				Subjects: w.users,
			})
		}
	}
}

// writeTargetPass flags update and delete grants whose targets can never
// be selected on any view of a user in scope. Updates (rename and child
// renaming, axioms 21–22) additionally require read on the target — a
// RESTRICTED node cannot be renamed — so update needs an overlapping read
// accept; deletes only need the target present in the view, so read or
// position suffices.
func writeTargetPass(rep *Report, a *analysis) {
	for _, w := range a.infos {
		if w.rule.Effect != policy.Accept || w.empty || len(w.users) == 0 {
			continue
		}
		switch w.rule.Privilege {
		case policy.Update:
			if !anyVisibilityOverlap(a, w, policy.Read) {
				rep.add(Finding{
					Code: CodeUnselectableTarget, Severity: Warning, Rule: w.rule.String(), Priority: w.rule.Priority,
					Message:  "update granted on a region no user in scope can ever read; renames there can never succeed",
					Subjects: w.users,
				})
			}
		case policy.Delete:
			if a.m.overlapRoot(w) {
				continue
			}
			if !anyVisibilityOverlap(a, w, policy.Read, policy.Position) {
				rep.add(Finding{
					Code: CodeUnselectableTarget, Severity: Warning, Rule: w.rule.String(), Priority: w.rule.Priority,
					Message:  "delete granted on a region no user in scope can ever see in a view; the grant can never be exercised",
					Subjects: w.users,
				})
			}
		}
	}
}

// covertChannelPass flags the §2.2 interplay: a region where a user holds
// position (so the node appears, RESTRICTED) together with update, while
// the latest-priority read rule overlapping that region denies read (or no
// read rule reaches it). Such a user can rename-probe content they are not
// allowed to read.
func covertChannelPass(rep *Report, a *analysis) {
	type pairKey struct{ pos, upd int64 }
	hits := map[pairKey][]string{}
	for _, pos := range a.infos {
		if pos.rule.Effect != policy.Accept || pos.rule.Privilege != policy.Position || pos.empty {
			continue
		}
		for _, j := range a.candidates(policy.Update, pos.key) {
			upd := a.infos[j]
			if upd.rule.Effect != policy.Accept || upd.empty {
				continue
			}
			common := commonUsers(pos, upd)
			if len(common) == 0 || !a.m.overlap2(pos, upd) {
				continue
			}
			for _, u := range common {
				var best *ruleInfo
				for _, k := range a.candidates(policy.Read, pos.key) {
					rd := a.infos[k]
					if rd.empty || !rd.uset[u] {
						continue
					}
					if !a.m.overlap3(pos, upd, rd) {
						continue
					}
					if best == nil || rd.rule.Priority > best.rule.Priority {
						best = rd
					}
				}
				if best == nil || best.rule.Effect == policy.Deny {
					k := pairKey{pos.rule.Priority, upd.rule.Priority}
					hits[k] = append(hits[k], u)
				}
			}
		}
	}
	keys := make([]pairKey, 0, len(hits))
	for k := range hits {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pos != keys[j].pos {
			return keys[i].pos < keys[j].pos
		}
		return keys[i].upd < keys[j].upd
	})
	for _, k := range keys {
		users := hits[k]
		sort.Strings(users)
		users = dedupStrings(users)
		rep.add(Finding{
			Code: CodeCovertChannel, Severity: Warning, Priority: k.pos,
			Rule: ruleString(a.infos, k.pos),
			Message: fmt.Sprintf("position without read overlaps update grant @%d: users can rename-probe content they cannot read (§2.2)",
				k.upd),
			Related:  []int64{k.upd},
			Subjects: users,
		})
	}
}

func ruleString(infos []*ruleInfo, priority int64) string {
	for _, ri := range infos {
		if ri.rule.Priority == priority {
			return ri.rule.String()
		}
	}
	return ""
}

func dedupStrings(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
