// Package policyanalysis statically analyzes an access-control policy
// against a subject hierarchy, without any document: each rule's XPath is
// abstracted into a conservative downward pattern (xpath.Pattern) and the
// analyzer decides satisfiability, overlap and containment of those
// patterns exactly, by compiling them to word automata over root-to-node
// paths. Findings (dead rules, accept/deny reopenings, write grants that
// can never be exercised on any view, covert-channel hazards) are reported
// with stable codes so CI and the admin tooling can gate on them.
package policyanalysis

import (
	"sort"
	"strings"

	"securexml/internal/xpath"
)

// A node in any document is identified, for pattern purposes, by the word
// of symbols on the walk from the document node down to it. Symbols carry
// the node category and, for elements and attributes, the name — collapsed
// to "" ("any other name") when the name is not mentioned by the patterns
// under consideration, which keeps the alphabet finite without losing
// precision for those patterns.

type symCat int

const (
	catElem symCat = iota
	catAttr
	catText
	catComment
	catPI
)

type symbol struct {
	cat  symCat
	name string // "" = some name not mentioned by any involved pattern
}

// alphabetFor builds the finite symbol alphabet relevant to a set of
// patterns: every element/attribute name any of them mentions, plus one
// "other" representative per category.
func alphabetFor(pats []*xpath.Pattern) []symbol {
	elems := map[string]bool{}
	attrs := map[string]bool{}
	for _, p := range pats {
		for _, alt := range p.Alts {
			for _, st := range alt {
				switch st.Kind {
				case xpath.PatNamedElement:
					elems[st.Name] = true
				case xpath.PatNamedAttribute:
					attrs[st.Name] = true
				}
			}
		}
	}
	var alpha []symbol
	for _, m := range []struct {
		cat   symCat
		names map[string]bool
	}{{catElem, elems}, {catAttr, attrs}} {
		names := make([]string, 0, len(m.names))
		for n := range m.names {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			alpha = append(alpha, symbol{m.cat, n})
		}
		alpha = append(alpha, symbol{m.cat, ""})
	}
	alpha = append(alpha, symbol{catText, ""}, symbol{catComment, ""}, symbol{catPI, ""})
	return alpha
}

// stepMatches reports whether one pattern step accepts one path symbol.
func stepMatches(st xpath.PatternStep, s symbol) bool {
	switch st.Kind {
	case xpath.PatAnyNode:
		return true
	case xpath.PatAnyChild:
		return s.cat != catAttr
	case xpath.PatElement:
		return s.cat == catElem
	case xpath.PatNamedElement:
		return s.cat == catElem && s.name == st.Name
	case xpath.PatText:
		return s.cat == catText
	case xpath.PatComment:
		return s.cat == catComment
	case xpath.PatPI:
		return s.cat == catPI
	case xpath.PatAnyAttribute:
		return s.cat == catAttr
	case xpath.PatNamedAttribute:
		return s.cat == catAttr && s.name == st.Name
	default:
		return false
	}
}

// gapMatches reports whether a symbol may occur strictly *inside* a gap
// (the intermediate levels of a '//'). Intermediate nodes on a descendant
// walk are non-attribute nodes — the descendant axis recurses through
// Children(), never through attributes — except under the universal
// PatAnyNode over-approximation, whose words must also reach
// attribute-value text (…·attr·text).
func gapMatches(next xpath.PatternStep, s symbol) bool {
	if next.Kind == xpath.PatAnyNode {
		return true
	}
	return s.cat != catAttr
}

// nfa is the word automaton of one pattern. State i (1-based within an
// alternative chain) means "the first i steps of this alternative are
// matched"; state 0 is the shared start. Gap steps add self-loop behavior
// handled in step().
type nfa struct {
	alts [][]xpath.PatternStep
}

type nfaState struct {
	alt int // index into alts
	pos int // number of steps already matched
}

// start returns the initial state set: position 0 of every alternative.
func (a *nfa) start() []nfaState {
	states := make([]nfaState, len(a.alts))
	for i := range a.alts {
		states[i] = nfaState{alt: i, pos: 0}
	}
	return states
}

// accepting reports whether any current state has consumed its whole
// alternative.
func (a *nfa) accepting(states []nfaState) bool {
	for _, st := range states {
		if st.pos == len(a.alts[st.alt]) {
			return true
		}
	}
	return false
}

// step advances every state over one symbol (subset construction).
func (a *nfa) step(states []nfaState, s symbol) []nfaState {
	seen := map[nfaState]bool{}
	var out []nfaState
	add := func(st nfaState) {
		if !seen[st] {
			seen[st] = true
			out = append(out, st)
		}
	}
	for _, st := range states {
		alt := a.alts[st.alt]
		if st.pos < len(alt) {
			next := alt[st.pos]
			if stepMatches(next, s) {
				add(nfaState{alt: st.alt, pos: st.pos + 1})
			}
			if next.Gap && gapMatches(next, s) {
				add(st) // stay inside the gap
			}
		}
	}
	return out
}

// stateKey serializes a state set for visited-set deduplication.
func stateKey(states []nfaState) string {
	pairs := make([]string, len(states))
	for i, st := range states {
		pairs[i] = itoa(st.alt) + ":" + itoa(st.pos)
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// searchWord runs the product subset simulation of several pattern
// automata over all words in the alphabet, breadth-first, and reports
// whether some word (including the empty word, i.e. the document node
// itself) reaches a configuration satisfying goal. The subset construction
// is deterministic, so "pattern does NOT match" is decidable per word —
// which is what makes containment checking possible.
func searchWord(nfas []*nfa, alpha []symbol, goal func(accepts []bool) bool) bool {
	cur := make([][]nfaState, len(nfas))
	for i, a := range nfas {
		cur[i] = a.start()
	}
	check := func(cfg [][]nfaState) bool {
		acc := make([]bool, len(nfas))
		for i, a := range nfas {
			acc[i] = a.accepting(cfg[i])
		}
		return goal(acc)
	}
	cfgKey := func(cfg [][]nfaState) string {
		var b strings.Builder
		for i, states := range cfg {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(stateKey(states))
		}
		return b.String()
	}
	if check(cur) {
		return true
	}
	visited := map[string]bool{cfgKey(cur): true}
	queue := [][][]nfaState{cur}
	for len(queue) > 0 {
		cfg := queue[0]
		queue = queue[1:]
		for _, s := range alpha {
			next := make([][]nfaState, len(nfas))
			alive := false
			for i, a := range nfas {
				next[i] = a.step(cfg[i], s)
				if len(next[i]) > 0 {
					alive = true
				}
			}
			if check(next) {
				return true
			}
			if !alive {
				continue // dead configuration: no future word can change accepts
			}
			k := cfgKey(next)
			if !visited[k] {
				visited[k] = true
				queue = append(queue, next)
			}
		}
	}
	return false
}

func nfaOf(p *xpath.Pattern) *nfa { return &nfa{alts: p.Alts} }

// satisfiable reports whether some document node could match the pattern.
func satisfiable(p *xpath.Pattern) bool {
	return searchWord([]*nfa{nfaOf(p)}, alphabetFor([]*xpath.Pattern{p}),
		func(acc []bool) bool { return acc[0] })
}

// overlapAll reports whether some single node could match every pattern at
// once. For exact patterns this is precise; with any inexact pattern it is
// a sound "maybe overlaps".
func overlapAll(ps ...*xpath.Pattern) bool {
	nfas := make([]*nfa, len(ps))
	for i, p := range ps {
		nfas[i] = nfaOf(p)
	}
	return searchWord(nfas, alphabetFor(ps), func(acc []bool) bool {
		for _, a := range acc {
			if !a {
				return false
			}
		}
		return true
	})
}

// contains reports whether every node matching inner also matches outer:
// no word is accepted by inner and rejected by outer. Callers must only
// trust a true result when outer.Exact holds (an inexact outer matches
// more words than the real rule selects); inner may be inexact — its
// over-approximation only makes containment harder to establish, which is
// the sound direction.
func contains(outer, inner *xpath.Pattern) bool {
	return !searchWord([]*nfa{nfaOf(inner), nfaOf(outer)},
		alphabetFor([]*xpath.Pattern{inner, outer}),
		func(acc []bool) bool { return acc[0] && !acc[1] })
}

// rootPattern matches exactly the document node — used to test whether a
// pattern can select the root.
func rootPattern() *xpath.Pattern {
	return &xpath.Pattern{Alts: [][]xpath.PatternStep{{}}, Exact: true}
}
