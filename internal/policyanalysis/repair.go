package policyanalysis

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"securexml/internal/findings"
	"securexml/internal/obs"
	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

// This file implements minimal-repair synthesis over analyzer findings,
// after Bravo–Cheney–Fundulaki's repair framework for inconsistent XML
// write-access policies: for each repairable finding, enumerate candidate
// edit sets from a small primitive vocabulary (delete a rule, flip its
// sign, renumber its priority, narrow its path), rank them by edit
// distance, and offer only candidates that survive two gates — re-analysis
// (the finding is gone and nothing new appeared) and, when a document is
// at hand, an E10-style differential oracle (cell-for-cell permission
// comparison per user) that labels each survivor semantics-preserving or
// semantics-changing.

// Edit kinds.
const (
	EditDeleteRule  = "delete-rule"
	EditFlipEffect  = "flip-effect"
	EditSetPriority = "set-priority"
	EditNarrowPath  = "narrow-path"
)

// Edit is one primitive change to the analyzed rule slice. The target is
// addressed by slice index, not priority: a priority collision makes the
// priority ambiguous by definition.
type Edit struct {
	Kind  string
	Index int
	// Exactly one of the following is meaningful, per Kind.
	NewPriority int64
	NewPath     string
	NewEffect   policy.Effect
}

// Repair is one candidate fix for one finding.
type Repair struct {
	// Code and Priority anchor the finding being repaired.
	Code     string
	Priority int64
	Edits    []Edit
	// Distance is the number of primitive edits (the ranking key).
	Distance int
	// Validated reports that re-analysis of the patched slice showed the
	// finding gone and no finding that was not already present.
	Validated bool
	// SemanticsChecked is set when the differential oracle ran (a document
	// was supplied); SemanticsPreserving then reports whether every
	// affected user's permission matrix stayed bit-identical.
	SemanticsChecked    bool
	SemanticsPreserving bool
	Description         string
}

// RepairReport pairs an analysis with the validated repairs per finding.
type RepairReport struct {
	*Report
	Repairs []Repair
	// Rules is the analyzed slice (snapshot order), the coordinate system
	// for Edit.Index.
	Rules []policy.Rule
}

// RepairableCodes lists the finding kinds the engine can synthesize
// repairs for. The structural error kinds (bad-path, unreachable-subject)
// need information the policy does not contain — the intended path or
// subject — and the covert-channel hazard is a §2.2 design warning whose
// resolution is a policy decision, so those are reported but not repaired.
var RepairableCodes = map[string]bool{
	CodeDeadRule:           true,
	CodeConflictOverlap:    true,
	CodeInsertInvisible:    true,
	CodeUnselectableTarget: true,
	CodePriorityCollision:  true,
	CodePriorityDisorder:   true,
}

var (
	repairStage     = obs.Stage("policy_repair")
	repairPlans     = obs.Default().Counter("xmlsec_repair_plans_total")
	repairOffered   = obs.Default().Counter("xmlsec_repair_candidates_total", "outcome", "offered")
	repairRejected  = obs.Default().Counter("xmlsec_repair_candidates_total", "outcome", "rejected")
	repairPreserved = obs.Default().Counter("xmlsec_repair_candidates_total", "outcome", "semantics_preserving")
)

// PlanRepairs analyzes rules and synthesizes validated repairs for every
// repairable finding. doc may be nil: the differential oracle is then
// skipped and repairs carry SemanticsChecked=false.
func PlanRepairs(doc *xmltree.Document, h *subject.Hierarchy, rules []policy.Rule) *RepairReport {
	return PlanRepairsCtx(context.Background(), doc, h, rules)
}

// PlanRepairsCtx is PlanRepairs with request-scoped tracing.
func PlanRepairsCtx(ctx context.Context, doc *xmltree.Document, h *subject.Hierarchy, rules []policy.Rule) *RepairReport {
	_, sp := obs.StartSpanCtx(ctx, "policy_repair", repairStage)
	defer sp.End()
	repairPlans.Inc()
	s := &repairSession{
		doc:   doc,
		h:     h,
		rules: rules,
		memo:  newMemo(h),
		nodes: make(map[string][]string),
		base:  make(map[string]map[string]uint8),
	}
	rep := analyzeRules(h, rules, s.memo)
	s.had = map[string]bool{}
	for _, of := range rep.Findings {
		s.had[of.Code+"@"+fmt.Sprint(of.Priority)] = true
	}
	out := &RepairReport{Report: rep, Rules: rules}
	for _, f := range rep.Findings {
		if !RepairableCodes[f.Code] {
			continue
		}
		cands := s.candidatesFor(f)
		valid := make([]Repair, 0, len(cands))
		for _, c := range cands {
			if s.validate(&f, &c) {
				valid = append(valid, c)
				repairOffered.Inc()
				if c.SemanticsChecked && c.SemanticsPreserving {
					repairPreserved.Inc()
				}
			} else {
				repairRejected.Inc()
			}
		}
		sort.SliceStable(valid, func(i, j int) bool {
			a, b := &valid[i], &valid[j]
			if a.SemanticsChecked && b.SemanticsChecked && a.SemanticsPreserving != b.SemanticsPreserving {
				return a.SemanticsPreserving
			}
			return a.Distance < b.Distance
		})
		out.Repairs = append(out.Repairs, valid...)
	}
	sp.AnnotateInt("findings", int64(len(rep.Findings)))
	sp.AnnotateInt("repairs", int64(len(out.Repairs)))
	return out
}

// Canonical converts the repair report to the shared findings schema.
func (rr *RepairReport) Canonical() *findings.Report {
	out := rr.Report.Canonical()
	for _, r := range rr.Repairs {
		cr := findings.Repair{
			Code:                r.Code,
			Priority:            r.Priority,
			Distance:            r.Distance,
			Validated:           r.Validated,
			SemanticsChecked:    r.SemanticsChecked,
			SemanticsPreserving: r.SemanticsPreserving,
			Description:         r.Description,
		}
		for _, e := range r.Edits {
			ce := findings.RepairEdit{Kind: e.Kind, Index: e.Index}
			if e.Index >= 0 && e.Index < len(rr.Rules) {
				ru := rr.Rules[e.Index]
				ce.Rule = ru.String()
				ce.Priority = ru.Priority
			}
			switch e.Kind {
			case EditSetPriority:
				ce.NewPriority = e.NewPriority
			case EditNarrowPath:
				ce.NewPath = e.NewPath
			case EditFlipEffect:
				ce.NewEffect = e.NewEffect.String()
			}
			cr.Edits = append(cr.Edits, ce)
		}
		out.Repairs = append(out.Repairs, cr)
	}
	return out
}

// ApplyEdits returns a new rule slice with the edits applied. Indices
// address the input slice; deletions are collected and removed last so
// one edit set may mix kinds safely. The result is stable-sorted by
// priority — the normal form Analyze-validated snapshots are stored in —
// which also discharges priority-disorder findings as a side effect.
func ApplyEdits(rules []policy.Rule, edits []Edit) []policy.Rule {
	out := make([]policy.Rule, len(rules))
	copy(out, rules)
	deleted := map[int]bool{}
	for _, e := range edits {
		if e.Index < 0 || e.Index >= len(out) {
			continue
		}
		switch e.Kind {
		case EditDeleteRule:
			deleted[e.Index] = true
		case EditFlipEffect:
			out[e.Index].Effect = e.NewEffect
		case EditSetPriority:
			out[e.Index].Priority = e.NewPriority
		case EditNarrowPath:
			out[e.Index].Path = e.NewPath
		}
	}
	if len(deleted) > 0 {
		kept := out[:0]
		for i, r := range out {
			if !deleted[i] {
				kept = append(kept, r)
			}
		}
		out = kept
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Priority < out[j].Priority })
	return out
}

// repairSession holds the caches one planning run shares across candidate
// validations: the analysis memo (automata + scopes), per-(path,user) node
// selections, and the original policy's per-user permission masks.
type repairSession struct {
	doc   *xmltree.Document
	h     *subject.Hierarchy
	rules []policy.Rule
	memo  *memo
	// nodes caches Select results keyed by path+"\x00"+user ($USER-free
	// paths select the same nodes for every user but the key is cheap).
	nodes map[string][]string
	// base caches the original slice's permission masks per user.
	base map[string]map[string]uint8
	// had indexes the original report's findings by code@priority, the
	// baseline for the no-new-findings validation gate.
	had map[string]bool
}

// candidatesFor enumerates the unvalidated candidate repairs for one
// finding, cheapest first. Validation prunes them afterwards.
func (s *repairSession) candidatesFor(f Finding) []Repair {
	idx := s.indexOfPriority(f.Priority)
	switch f.Code {
	case CodeDeadRule:
		if idx < 0 {
			return nil
		}
		cands := []Repair{s.deletion(f, idx, "delete the dead rule (its region is decided identically without it)")}
		// Reviving the rule by renumbering it past its shadowers changes
		// what it decides — offered second, validation and the oracle
		// decide whether it is a sensible alternative.
		if len(f.Related) > 0 {
			cands = append(cands, Repair{
				Code: f.Code, Priority: f.Priority, Distance: 1,
				Edits:       []Edit{{Kind: EditSetPriority, Index: idx, NewPriority: s.maxPriority() + 1}},
				Description: "revive the rule by renumbering it after its shadowers (it becomes the latest word on its region)",
			})
		}
		return cands
	case CodeConflictOverlap:
		if idx < 0 || len(f.Related) == 0 {
			return nil
		}
		denyPriority := f.Related[0]
		cands := []Repair{
			s.deletion(f, idx, "delete the accept that reopens the deny"),
			{
				Code: f.Code, Priority: f.Priority, Distance: 1,
				Edits:       []Edit{{Kind: EditFlipEffect, Index: idx, NewEffect: policy.Deny}},
				Description: fmt.Sprintf("flip the accept to a deny (the overlap with deny @%d then resolves the same way)", denyPriority),
			},
		}
		if p, ok := s.freePriorityBelow(denyPriority); ok {
			cands = append(cands, Repair{
				Code: f.Code, Priority: f.Priority, Distance: 1,
				Edits:       []Edit{{Kind: EditSetPriority, Index: idx, NewPriority: p}},
				Description: fmt.Sprintf("move the accept before deny @%d (priority %d), turning the overlap into the idiomatic broad-accept-then-refine shape", denyPriority, p),
			})
		}
		if narrowed, ok := s.narrowAwayFrom(idx, denyPriority); ok {
			cands = append(cands, Repair{
				Code: f.Code, Priority: f.Priority, Distance: 1,
				Edits:       []Edit{{Kind: EditNarrowPath, Index: idx, NewPath: narrowed}},
				Description: fmt.Sprintf("narrow the accept's path to the union branches disjoint from deny @%d", denyPriority),
			})
		}
		return cands
	case CodeInsertInvisible, CodeUnselectableTarget:
		if idx < 0 {
			return nil
		}
		return []Repair{
			s.deletion(f, idx, "delete the write grant no user in scope can exercise"),
			{
				Code: f.Code, Priority: f.Priority, Distance: 1,
				Edits:       []Edit{{Kind: EditFlipEffect, Index: idx, NewEffect: policy.Deny}},
				Description: "make the unexercisable grant an explicit deny, documenting the closed-world default",
			},
		}
	case CodePriorityCollision:
		return s.collisionCandidates(f)
	case CodePriorityDisorder:
		// ApplyEdits normalizes order after any edit set, so an empty edit
		// set is the minimal repair: re-sorting the slice into ascending
		// priority order.
		return []Repair{{
			Code: f.Code, Priority: f.Priority, Distance: 0,
			Edits:       nil,
			Description: "re-sort the snapshot into ascending priority order (no rule changes)",
		}}
	default:
		return nil
	}
}

func (s *repairSession) deletion(f Finding, idx int, why string) Repair {
	return Repair{
		Code: f.Code, Priority: f.Priority, Distance: 1,
		Edits:       []Edit{{Kind: EditDeleteRule, Index: idx}},
		Description: why,
	}
}

// collisionCandidates repairs a duplicated priority. Primary: keep the
// first colliding rule, renumber each later one to the nearest free
// priority above the collision — under the stable tie resolution
// (later-in-slice wins, mirroring Evaluate's >= scan) this preserves the
// relative order of the colliding rules, and when the slots immediately
// above are free it does not reorder them against any other rule either.
// Secondary: delete the later duplicates outright.
func (s *repairSession) collisionCandidates(f Finding) []Repair {
	var idxs []int
	for i, r := range s.rules {
		if r.Priority == f.Priority {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) < 2 {
		return nil
	}
	used := map[int64]bool{}
	for _, r := range s.rules {
		used[r.Priority] = true
	}
	var renumber, deletes []Edit
	next := f.Priority
	for _, i := range idxs[1:] {
		next++
		for used[next] {
			next++
		}
		used[next] = true
		renumber = append(renumber, Edit{Kind: EditSetPriority, Index: i, NewPriority: next})
		deletes = append(deletes, Edit{Kind: EditDeleteRule, Index: i})
	}
	return []Repair{
		{
			Code: f.Code, Priority: f.Priority, Distance: len(renumber), Edits: renumber,
			Description: fmt.Sprintf("renumber the %d later rule(s) at priority %d to the nearest free priorities, restoring the total order", len(renumber), f.Priority),
		},
		{
			Code: f.Code, Priority: f.Priority, Distance: len(deletes), Edits: deletes,
			Description: fmt.Sprintf("delete the %d later duplicate(s) of priority %d", len(deletes), f.Priority),
		},
	}
}

// indexOfPriority locates the unique rule carrying a priority, or -1 when
// absent or ambiguous (a collision finding is repaired by index instead).
func (s *repairSession) indexOfPriority(p int64) int {
	found := -1
	for i, r := range s.rules {
		if r.Priority == p {
			if found >= 0 {
				return -1
			}
			found = i
		}
	}
	return found
}

func (s *repairSession) maxPriority() int64 {
	var max int64
	for _, r := range s.rules {
		if r.Priority > max {
			max = r.Priority
		}
	}
	return max
}

// freePriorityBelow finds the largest unused positive priority strictly
// below p, so a renumbered rule lands as close to its target as possible.
func (s *repairSession) freePriorityBelow(p int64) (int64, bool) {
	used := map[int64]bool{}
	for _, r := range s.rules {
		used[r.Priority] = true
	}
	for q := p - 1; q >= 1; q-- {
		if !used[q] {
			return q, true
		}
	}
	return 0, false
}

// narrowAwayFrom proposes a narrowed path for the rule at idx: keep only
// the top-level union branches whose pattern is disjoint from the rule at
// denyPriority. Only applicable to union paths where at least one branch
// overlaps and at least one does not.
func (s *repairSession) narrowAwayFrom(idx int, denyPriority int64) (string, bool) {
	di := s.indexOfPriority(denyPriority)
	if di < 0 {
		return "", false
	}
	denyC, err := xpath.Compile(s.rules[di].Path)
	if err != nil {
		return "", false
	}
	denyPat := denyC.Pattern()
	branches := splitTopLevelUnion(s.rules[idx].Path)
	if len(branches) < 2 {
		return "", false
	}
	var kept []string
	for _, br := range branches {
		c, err := xpath.Compile(br)
		if err != nil {
			return "", false
		}
		if !overlapAll(c.Pattern(), denyPat) {
			kept = append(kept, br)
		}
	}
	if len(kept) == 0 || len(kept) == len(branches) {
		return "", false
	}
	return strings.Join(kept, " | "), true
}

// splitTopLevelUnion splits an XPath source on '|' at bracket depth zero
// outside string literals. A path without a top-level union comes back as
// a single element.
func splitTopLevelUnion(path string) []string {
	var out []string
	depth := 0
	var quote byte
	start := 0
	for i := 0; i < len(path); i++ {
		ch := path[i]
		if quote != 0 {
			if ch == quote {
				quote = 0
			}
			continue
		}
		switch ch {
		case '\'', '"':
			quote = ch
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		case '|':
			if depth == 0 {
				out = append(out, strings.TrimSpace(path[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(path[start:]))
	return out
}

// validate runs both gates over one candidate, filling its Validated and
// semantics fields. A candidate passes when re-analysis of the patched
// slice no longer contains the finding (same code, same origin rule) and
// contains no finding that was not already present in the original
// report. The differential oracle then classifies survivors.
func (s *repairSession) validate(f *Finding, c *Repair) bool {
	patched := ApplyEdits(s.rules, c.Edits)
	// originOf maps a patched rule's priority back to its original
	// priority, so findings can be identified across the renumbering.
	originOf := func(p int64) int64 {
		for _, e := range c.Edits {
			if e.Kind == EditSetPriority && e.NewPriority == p {
				return s.rules[e.Index].Priority
			}
		}
		return p
	}
	rep := analyzeRules(s.h, patched, s.memo)
	for _, pf := range rep.Findings {
		origin := originOf(pf.Priority)
		if pf.Code == f.Code && origin == f.Priority {
			return false // finding survived the edit
		}
		if !s.had[pf.Code+"@"+fmt.Sprint(origin)] {
			return false // edit introduced a new finding
		}
	}
	c.Validated = true
	if s.doc != nil {
		c.SemanticsChecked = true
		c.SemanticsPreserving = s.equivalent(patched, c.Edits)
	}
	return true
}

// equivalent runs the E10 differential oracle restricted to the users an
// edit set can affect: a rule is invisible to users outside the
// isa-closure of its subject (axiom 13), so only users in scope of an
// edited rule need their matrices compared.
func (s *repairSession) equivalent(patched []policy.Rule, edits []Edit) bool {
	affected := map[string]bool{}
	for _, e := range edits {
		if e.Index < 0 || e.Index >= len(s.rules) {
			continue
		}
		users, _ := s.memo.usersOf(s.rules[e.Index].Subject)
		for _, u := range users {
			affected[u] = true
		}
	}
	for u := range affected {
		base, ok := s.base[u]
		if !ok {
			base = s.evalMasks(s.rules, u)
			s.base[u] = base
		}
		got := s.evalMasks(patched, u)
		if len(base) != len(got) {
			return false
		}
		for id, m := range base {
			if got[id] != m {
				return false
			}
		}
	}
	return true
}

// evalMasks mirrors policy.Evaluate's axiom-14 merge over a raw rule
// slice: rules are taken in stable ascending priority order and the
// latest applicable rule wins each (node, privilege) cell, with >= so a
// later-in-slice rule wins a priority tie — exactly the overwrite
// behavior Evaluate's scan has, extended to slices Add would reject.
// Uncompilable or unknown-subject rules are skipped (the analyzer already
// errors on them, and Evaluate could not run them either).
func (s *repairSession) evalMasks(rules []policy.Rule, user string) map[string]uint8 {
	ordered := make([]policy.Rule, len(rules))
	copy(ordered, rules)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Priority < ordered[j].Priority })
	type cell struct {
		priority int64
		effect   policy.Effect
	}
	nPrivs := len(policy.Privileges)
	latest := map[string][]cell{}
	for _, r := range ordered {
		if !s.h.Exists(r.Subject) || !s.h.ISA(user, r.Subject) {
			continue
		}
		ids, ok := s.selectIDs(r.Path, user)
		if !ok {
			continue
		}
		for _, id := range ids {
			c := latest[id]
			if c == nil {
				c = make([]cell, nPrivs)
				latest[id] = c
			}
			if r.Priority >= c[r.Privilege].priority {
				c[r.Privilege] = cell{priority: r.Priority, effect: r.Effect}
			}
		}
	}
	masks := make(map[string]uint8, len(latest))
	for id, cells := range latest {
		var mask uint8
		for _, priv := range policy.Privileges {
			if cells[priv].priority > 0 && cells[priv].effect == policy.Accept {
				mask |= 1 << uint(priv)
			}
		}
		if mask != 0 {
			masks[id] = mask
		}
	}
	return masks
}

// selectIDs caches node selections per (path, user) — path selections are
// rule-set independent, so the cache survives across every candidate the
// session validates.
func (s *repairSession) selectIDs(path, user string) ([]string, bool) {
	key := path + "\x00" + user
	if ids, ok := s.nodes[key]; ok {
		return ids, ids != nil
	}
	c, err := xpath.Compile(path)
	if err != nil {
		s.nodes[key] = nil
		return nil, false
	}
	ns, err := c.Select(s.doc.Root(), xpath.Vars{"USER": xpath.String(user)})
	if err != nil {
		s.nodes[key] = nil
		return nil, false
	}
	ids := make([]string, len(ns))
	for i, n := range ns {
		ids[i] = n.ID().String()
	}
	if ids == nil {
		ids = []string{}
	}
	s.nodes[key] = ids
	return ids, true
}

// Fix iteratively applies the best validated repair per finding until the
// slice has no repairable findings or no progress can be made. It returns
// the repaired slice, the repairs applied in order, and the final report.
// A clean input comes back unchanged (zero applied repairs), which is what
// makes xmlsec-lint -fix -write idempotent.
func Fix(doc *xmltree.Document, h *subject.Hierarchy, rules []policy.Rule) ([]policy.Rule, []Repair, *RepairReport) {
	return FixCtx(context.Background(), doc, h, rules)
}

// FixCtx is Fix with request-scoped tracing.
func FixCtx(ctx context.Context, doc *xmltree.Document, h *subject.Hierarchy, rules []policy.Rule) ([]policy.Rule, []Repair, *RepairReport) {
	const maxRounds = 8
	var applied []Repair
	cur := rules
	var rr *RepairReport
	for round := 0; round < maxRounds; round++ {
		rr = PlanRepairsCtx(ctx, doc, h, cur)
		// Choose the best repair per finding anchor, skipping any whose
		// edits touch a rule another chosen repair already edits (indices
		// are only valid against the slice this round planned over).
		touched := map[int]bool{}
		chosen := map[string]bool{}
		var edits []Edit
		progress := false
		for _, r := range rr.Repairs {
			anchor := r.Code + "@" + fmt.Sprint(r.Priority)
			if chosen[anchor] {
				continue
			}
			conflict := false
			for _, e := range r.Edits {
				if touched[e.Index] {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			chosen[anchor] = true
			for _, e := range r.Edits {
				touched[e.Index] = true
			}
			edits = append(edits, r.Edits...)
			applied = append(applied, r)
			progress = true
		}
		if !progress {
			break
		}
		cur = ApplyEdits(cur, edits)
	}
	if len(applied) > 0 {
		// Report against the final state so callers see what remains.
		rr = PlanRepairsCtx(ctx, doc, h, cur)
	}
	return cur, applied, rr
}
