package policyanalysis

import (
	"strings"
	"testing"

	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
)

// paperDoc parses the paper's Fig. 1 document (two patients), the
// differential oracle's scenario document for paper-policy fixtures.
func paperDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	const xml = `<patients><franck><service>otolaryngology</service><diagnosis>tonsillitis</diagnosis></franck><robert><service>pneumology</service><diagnosis>pneumonia</diagnosis></robert></patients>`
	doc, err := xmltree.ParseString(xml, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// repairsFor indexes a report's repairs by finding anchor.
func repairsFor(rr *RepairReport, code string, priority int64) []Repair {
	var out []Repair
	for _, r := range rr.Repairs {
		if r.Code == code && r.Priority == priority {
			out = append(out, r)
		}
	}
	return out
}

// TestRepairStrategies is the table-driven check over known-fault
// fixtures: each seeded fault must come back with at least one validated
// repair, the expected minimal repair ranked first.
func TestRepairStrategies(t *testing.T) {
	h := subject.PaperHierarchy()
	cases := []struct {
		name    string
		extra   []policy.Rule
		code    string
		anchor  int64
		want    string // Kind of the expected best repair's first edit
		wantSem bool   // expected SemanticsPreserving of the best repair
	}{
		{
			// @22 shadows deny @11 for secretary; deleting the dead deny
			// is the E10-validated semantics-preserving repair.
			name: "dead rule deleted",
			extra: []policy.Rule{{
				Effect: policy.Accept, Privilege: policy.Read,
				Path: "//diagnosis/node()", Subject: "secretary", Priority: 22,
			}},
			code: CodeDeadRule, anchor: 11,
			want: EditDeleteRule, wantSem: true,
		},
		{
			// The same fixture seen from the accept's side: the overlap
			// conflict repairs by deleting the reopening accept, which
			// restores the original matrix for secretaries — but the
			// original matrix here is the one WITH the accept, so deletion
			// is semantics-changing (it takes the regained read away).
			name: "conflict overlap",
			extra: []policy.Rule{{
				Effect: policy.Accept, Privilege: policy.Read,
				Path: "//diagnosis/node()", Subject: "secretary", Priority: 22,
			}},
			code: CodeConflictOverlap, anchor: 22,
			want: EditDeleteRule, wantSem: false,
		},
		{
			name: "insert invisible",
			extra: []policy.Rule{{
				Effect: policy.Accept, Privilege: policy.Insert,
				Path: "/billing//invoice", Subject: "patient", Priority: 23,
			}},
			code: CodeInsertInvisible, anchor: 23,
			// The grant's region is absent from the scenario document, so
			// deleting it changes no permission cell.
			want: EditDeleteRule, wantSem: true,
		},
		{
			name: "unselectable target",
			extra: []policy.Rule{{
				Effect: policy.Accept, Privilege: policy.Update,
				Path: "/billing//invoice", Subject: "patient", Priority: 24,
			}},
			code: CodeUnselectableTarget, anchor: 24,
			want: EditDeleteRule, wantSem: true,
		},
	}
	doc := paperDoc(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rules := append(paperRules(t, h), tc.extra...)
			rr := PlanRepairs(doc, h, rules)
			got := repairsFor(rr, tc.code, tc.anchor)
			if len(got) == 0 {
				t.Fatalf("no validated repair for %s@%d:\n%s", tc.code, tc.anchor, rr.Canonical().Text())
			}
			best := got[0]
			if !best.Validated {
				t.Fatal("offered repair not marked validated")
			}
			if len(best.Edits) == 0 || best.Edits[0].Kind != tc.want {
				t.Errorf("best repair edit = %+v, want kind %s", best.Edits, tc.want)
			}
			if !best.SemanticsChecked {
				t.Error("differential oracle did not run despite a document")
			}
			if best.SemanticsPreserving != tc.wantSem {
				t.Errorf("SemanticsPreserving = %v, want %v (%s)", best.SemanticsPreserving, tc.wantSem, best.Description)
			}
		})
	}
}

// TestRepairConflictAlternatives checks the conflict-overlap candidate
// space on a partial overlap: renumbering the accept below the deny must
// validate (the accept keeps its non-overlapping region, so it is not
// dead afterwards) alongside the plain deletion.
func TestRepairConflictAlternatives(t *testing.T) {
	h := subject.PaperHierarchy()
	rules := []policy.Rule{
		{Effect: policy.Deny, Privilege: policy.Read, Path: "//service", Subject: "secretary", Priority: 10},
		// Overlaps the deny on depth-3 service elements but also covers
		// the sibling diagnosis elements, so moving it below the deny
		// leaves it alive on the rest of its region.
		{Effect: policy.Accept, Privilege: policy.Read, Path: "/patients/*/*", Subject: "secretary", Priority: 20},
	}
	rr := PlanRepairs(paperDoc(t), h, rules)
	kinds := map[string]bool{}
	for _, r := range repairsFor(rr, CodeConflictOverlap, 20) {
		for _, e := range r.Edits {
			kinds[e.Kind] = true
		}
	}
	if !kinds[EditDeleteRule] {
		t.Errorf("expected a delete-rule candidate, got kinds %v", kinds)
	}
	if !kinds[EditSetPriority] {
		t.Errorf("expected a set-priority candidate (free slot below the deny exists), got kinds %v", kinds)
	}
	// Against the full paper policy the same move is rejected: an accept
	// renumbered below an identical-path deny is dead (the deny shadows
	// it), and the engine must not offer a repair that trades one finding
	// for another.
	full := append(paperRules(t, h), policy.Rule{
		Effect: policy.Accept, Privilege: policy.Read,
		Path: "//diagnosis/node()", Subject: "secretary", Priority: 22,
	})
	rr = PlanRepairs(paperDoc(t), h, full)
	for _, r := range repairsFor(rr, CodeConflictOverlap, 22) {
		for _, e := range r.Edits {
			if e.Kind == EditSetPriority {
				t.Errorf("identical-path accept moved below its deny must be rejected as newly dead: %+v", r)
			}
		}
	}
}

// TestRepairPriorityCollision seeds a duplicate priority and expects the
// renumbering repair to validate and restore the total order.
func TestRepairPriorityCollision(t *testing.T) {
	h := subject.PaperHierarchy()
	rules := append(paperRules(t, h), policy.Rule{
		// Same priority as the paper's rule 10 (priority 19), disjoint
		// region and subject: a pure bookkeeping error.
		Effect: policy.Accept, Privilege: policy.Read,
		Path: "/patients", Subject: "doctor", Priority: 19,
	})
	rep := AnalyzeRules(h, rules)
	got := codesOf(rep)
	if len(got[CodePriorityCollision]) != 1 || got[CodePriorityCollision][0] != 19 {
		t.Fatalf("want priority-collision@19, got %v:\n%s", got, rep.Text())
	}
	if len(got[CodePriorityDisorder]) == 0 {
		t.Fatalf("appending priority 19 after 21 must also flag priority-disorder, got %v", got)
	}
	rr := PlanRepairs(paperDoc(t), h, rules)
	repairs := repairsFor(rr, CodePriorityCollision, 19)
	if len(repairs) == 0 {
		t.Fatalf("no validated repair for the collision:\n%s", rr.Canonical().Text())
	}
	best := repairs[0]
	if best.Edits[0].Kind != EditSetPriority {
		t.Errorf("best collision repair = %+v, want set-priority", best.Edits)
	}
	fixed := ApplyEdits(rules, best.Edits)
	after := AnalyzeRules(h, fixed)
	if cs := codesOf(after); len(cs[CodePriorityCollision]) != 0 || len(cs[CodePriorityDisorder]) != 0 {
		t.Fatalf("collision repair left ordering findings:\n%s", after.Text())
	}
}

// TestRepairPriorityDisorder: an out-of-order (but duplicate-free)
// snapshot repairs with the zero-edit re-sort.
func TestRepairPriorityDisorder(t *testing.T) {
	h := subject.PaperHierarchy()
	rules := paperRules(t, h)
	rules[0], rules[1] = rules[1], rules[0]
	rep := AnalyzeRules(h, rules)
	if got := codesOf(rep); len(got[CodePriorityDisorder]) != 1 {
		t.Fatalf("want one priority-disorder, got %v:\n%s", got, rep.Text())
	}
	rr := PlanRepairs(paperDoc(t), h, rules)
	repairs := repairsFor(rr, CodePriorityDisorder, rules[1].Priority)
	if len(repairs) != 1 {
		t.Fatalf("want the re-sort repair, got %d:\n%s", len(repairs), rr.Canonical().Text())
	}
	if repairs[0].Distance != 0 || !repairs[0].SemanticsPreserving {
		t.Errorf("re-sort must be distance 0 and semantics-preserving, got %+v", repairs[0])
	}
	fixed := ApplyEdits(rules, nil)
	if rep := AnalyzeRules(h, fixed); len(rep.Findings) != 0 {
		t.Fatalf("sorted paper policy must be clean:\n%s", rep.Text())
	}
}

// TestFixConvergesAndIsIdempotent is the repair-idempotence property on
// the broken fixture: Fix must leave zero repairable findings, and a
// second Fix over the result must apply nothing.
func TestFixConvergesAndIsIdempotent(t *testing.T) {
	h := subject.PaperHierarchy()
	rules := append(paperRules(t, h),
		policy.Rule{Effect: policy.Accept, Privilege: policy.Read, Path: "//diagnosis/node()", Subject: "secretary", Priority: 22},
		policy.Rule{Effect: policy.Accept, Privilege: policy.Insert, Path: "/billing//invoice", Subject: "patient", Priority: 23},
		policy.Rule{Effect: policy.Accept, Privilege: policy.Update, Path: "/billing//invoice", Subject: "patient", Priority: 24},
		policy.Rule{Effect: policy.Accept, Privilege: policy.Read, Path: "/patients", Subject: "doctor", Priority: 19},
	)
	doc := paperDoc(t)
	fixed, applied, rr := Fix(doc, h, rules)
	if len(applied) == 0 {
		t.Fatal("Fix applied nothing on a broken policy")
	}
	for _, f := range rr.Findings {
		if RepairableCodes[f.Code] {
			t.Errorf("repairable finding survived Fix: %s@%d", f.Code, f.Priority)
		}
	}
	again, applied2, _ := Fix(doc, h, fixed)
	if len(applied2) != 0 {
		t.Errorf("second Fix applied %d repairs; want idempotence", len(applied2))
	}
	if len(again) != len(fixed) {
		t.Errorf("second Fix changed the rule count: %d -> %d", len(fixed), len(again))
	}
}

// TestFixCleanPolicyUntouched: a clean policy comes back unchanged.
func TestFixCleanPolicyUntouched(t *testing.T) {
	h := subject.PaperHierarchy()
	rules := paperRules(t, h)
	fixed, applied, rr := Fix(paperDoc(t), h, rules)
	if len(applied) != 0 || len(rr.Findings) != 0 {
		t.Fatalf("clean policy: applied=%d findings=%d", len(applied), len(rr.Findings))
	}
	if len(fixed) != len(rules) {
		t.Fatalf("rule count changed: %d -> %d", len(rules), len(fixed))
	}
	for i := range fixed {
		if fixed[i].String() != rules[i].String() {
			t.Errorf("rule %d changed: %s -> %s", i, rules[i].String(), fixed[i].String())
		}
	}
}

// TestApplyEditsMixedKinds covers index-addressed application with a
// delete in the mix, and the normalizing sort.
func TestApplyEditsMixedKinds(t *testing.T) {
	h := subject.PaperHierarchy()
	rules := paperRules(t, h)
	out := ApplyEdits(rules, []Edit{
		{Kind: EditDeleteRule, Index: 0},
		{Kind: EditFlipEffect, Index: 1, NewEffect: policy.Accept},
		{Kind: EditSetPriority, Index: 2, NewPriority: 5},
		{Kind: EditNarrowPath, Index: 3, NewPath: "/patients/franck"},
	})
	if len(out) != len(rules)-1 {
		t.Fatalf("len = %d, want %d", len(out), len(rules)-1)
	}
	if out[0].Priority != 5 || out[0].Privilege != policy.Position {
		t.Errorf("renumbered rule must sort first: %+v", out[0])
	}
	if out[1].Effect != policy.Accept || out[1].Privilege != policy.Read {
		t.Errorf("flip lost: %+v", out[1])
	}
	if out[2].Path != "/patients/franck" {
		t.Errorf("narrow lost: %+v", out[2])
	}
	// Input slice untouched.
	if rules[2].Priority != 12 || rules[1].Effect != policy.Deny {
		t.Error("ApplyEdits mutated its input")
	}
}

// TestSplitTopLevelUnion pins the union splitter against predicates,
// parens and literals containing '|'.
func TestSplitTopLevelUnion(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"/a/b", []string{"/a/b"}},
		{"/a | //b", []string{"/a", "//b"}},
		{"/a[x = 'p|q'] | /b", []string{"/a[x = 'p|q']", "/b"}},
		{"/a[u | v] | /b", []string{"/a[u | v]", "/b"}},
	}
	for _, tc := range cases {
		got := splitTopLevelUnion(tc.in)
		if strings.Join(got, "§") != strings.Join(tc.want, "§") {
			t.Errorf("split(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestRepairNarrowPath: a union accept overlapping a deny on only one
// branch must offer the narrow-path repair keeping the disjoint branch.
func TestRepairNarrowPath(t *testing.T) {
	h := subject.PaperHierarchy()
	rules := append(paperRules(t, h), policy.Rule{
		// The /patients branch is provably disjoint from //diagnosis/node()
		// (too shallow to reach under a diagnosis element); the other
		// branch is the reopening overlap.
		Effect: policy.Accept, Privilege: policy.Read,
		Path: "//diagnosis/node() | /patients", Subject: "secretary", Priority: 22,
	})
	rr := PlanRepairs(paperDoc(t), h, rules)
	var narrow *Repair
	for _, r := range repairsFor(rr, CodeConflictOverlap, 22) {
		if r.Edits[0].Kind == EditNarrowPath {
			cp := r
			narrow = &cp
		}
	}
	if narrow == nil {
		t.Fatalf("no narrow-path candidate offered:\n%s", rr.Canonical().Text())
	}
	if got := narrow.Edits[0].NewPath; got != "/patients" {
		t.Errorf("narrowed path = %q, want the branch disjoint from deny @11", got)
	}
}

// TestRepairMirrorMatchesEvaluate pins the session's mirror evaluator
// against policy.Evaluate on a duplicate-free policy: the differential
// oracle is only as good as this agreement.
func TestRepairMirrorMatchesEvaluate(t *testing.T) {
	h := subject.PaperHierarchy()
	pol, err := policy.PaperPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	doc := paperDoc(t)
	rules := paperRules(t, h)
	s := &repairSession{doc: doc, h: h, rules: rules, memo: newMemo(h), nodes: map[string][]string{}, base: map[string]map[string]uint8{}}
	for _, u := range h.Users() {
		pm, err := pol.Evaluate(doc, h, u)
		if err != nil {
			t.Fatal(err)
		}
		masks := s.evalMasks(rules, u)
		for _, n := range doc.Nodes() {
			id := n.ID().String()
			for _, priv := range policy.Privileges {
				want := pm.HasID(id, priv)
				got := masks[id]&(1<<uint(priv)) != 0
				if want != got {
					t.Fatalf("mirror disagrees with Evaluate: user %s node %s priv %s: evaluate=%v mirror=%v",
						u, id, priv, want, got)
				}
			}
		}
	}
}
