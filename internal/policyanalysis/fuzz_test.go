package policyanalysis

import (
	"fmt"
	"testing"

	"securexml/internal/policy"
	"securexml/internal/subject"
)

// fuzzPaths is a pool of valid paths chosen to overlap and shadow each
// other often, so random draws land in every analyzer pass.
var fuzzPaths = []string{
	"/descendant-or-self::node()",
	"//diagnosis",
	"//diagnosis/node()",
	"//diagnosis/text()",
	"/patients",
	"/patients/*",
	"/patients/*/*",
	"/patients/node()",
	"//service",
	"//service/node()",
	"//record",
	"//note",
	"//text()",
	"/patients/*[name() = $USER]/descendant-or-self::node()",
}

var fuzzSubjects = []string{"staff", "secretary", "doctor", "epidemiologist", "patient", "beaufort", "laporte"}

// rulesFromBytes decodes the fuzz input into an unvalidated rule slice:
// 4 bytes per rule — effect/privilege, path, subject, priority. Priorities
// come straight from the input, so collisions and descending runs (which
// policy.Add would reject) are generated on purpose.
func rulesFromBytes(data []byte) []policy.Rule {
	var rules []policy.Rule
	for i := 0; i+4 <= len(data) && len(rules) < 16; i += 4 {
		rules = append(rules, policy.Rule{
			Effect:    policy.Effect(data[i] & 1),
			Privilege: policy.Privileges[int(data[i]>>1)%len(policy.Privileges)],
			Path:      fuzzPaths[int(data[i+1])%len(fuzzPaths)],
			Subject:   fuzzSubjects[int(data[i+2])%len(fuzzSubjects)],
			Priority:  int64(data[i+3]),
		})
	}
	return rules
}

// FuzzRepair drives the repair engine over random 4-quadrant policies
// (accept/deny × read/write privileges) and asserts its core contract on
// every offered repair: applying the edits removes the finding it targets
// and never introduces a finding the original policy did not have.
func FuzzRepair(f *testing.F) {
	f.Add([]byte{0, 0, 0, 10, 1, 2, 1, 20, 2, 2, 1, 20})
	f.Add([]byte{1, 0, 1, 5, 0, 2, 1, 5, 3, 3, 2, 4})
	f.Add([]byte{2, 1, 0, 1, 3, 1, 0, 2, 4, 1, 0, 3, 5, 1, 0, 4})
	h := subject.PaperHierarchy()
	f.Fuzz(func(t *testing.T, data []byte) {
		rules := rulesFromBytes(data)
		rr := PlanRepairs(nil, h, rules)
		orig := map[string]bool{}
		for _, fd := range rr.Findings {
			orig[fd.Code+"@"+fmt.Sprint(fd.Priority)] = true
		}
		for _, r := range rr.Repairs {
			if !r.Validated {
				t.Fatalf("unvalidated repair offered: %+v", r)
			}
			// Renumbering edits move a finding's anchor; map patched
			// priorities back to their origin before comparing identities.
			originOf := map[int64]int64{}
			for _, e := range r.Edits {
				if e.Kind == EditSetPriority && e.Index >= 0 && e.Index < len(rules) {
					originOf[e.NewPriority] = rules[e.Index].Priority
				}
			}
			patched := ApplyEdits(rules, r.Edits)
			rep := AnalyzeRules(h, patched)
			target := r.Code + "@" + fmt.Sprint(r.Priority)
			for _, fd := range rep.Findings {
				p := fd.Priority
				if o, ok := originOf[p]; ok {
					p = o
				}
				id := fd.Code + "@" + fmt.Sprint(p)
				if id == target {
					t.Errorf("repair %s left its finding in place\nrules: %v\nedits: %+v", target, rules, r.Edits)
				}
				if !orig[id] {
					t.Errorf("repair %s introduced new finding %s\nrules: %v\nedits: %+v", target, id, rules, r.Edits)
				}
			}
		}
		// Fix must terminate; convergence to zero repairable findings is
		// not guaranteed on adversarial inputs (every candidate for a
		// finding may be rejected), but it must never loop or panic.
		Fix(nil, h, rules)
	})
}
