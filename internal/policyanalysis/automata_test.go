package policyanalysis

import (
	"testing"

	"securexml/internal/xpath"
)

func pat(t *testing.T, src string) *xpath.Pattern {
	t.Helper()
	c, err := xpath.Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return c.Pattern()
}

func TestSatisfiable(t *testing.T) {
	for _, src := range []string{"/", "/a", "//a/b", "/a/@id", "//text()", "/descendant-or-self::node()"} {
		if !satisfiable(pat(t, src)) {
			t.Errorf("satisfiable(%q) = false", src)
		}
	}
	if satisfiable(pat(t, "/a/attribute::text()")) {
		t.Error("attribute::text() must be unsatisfiable")
	}
}

func TestOverlap(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"/a", "/a", true},
		{"/a", "/b", false},
		{"/a/*", "/a/b", true},
		{"//diagnosis/node()", "/patients/*", false},
		{"//diagnosis/node()", "/descendant-or-self::node()", true},
		{"//b", "/a/b/c", false}, // //b selects b elements, /a/b/c a c element
		{"//b", "/a//b", true},
		{"/a/@id", "/a/node()", false}, // child::node() never selects attributes
		{"/a/@id", "/a/@*", true},
		{"//text()", "/a/b", false},
		{"/patients", "/patients/*[name() = $USER]", false}, // approx keeps depth
		{"/billing//invoice", "/patients/*[name() = $USER]/descendant-or-self::node()", false},
	}
	for _, tc := range cases {
		if got := overlapAll(pat(t, tc.a), pat(t, tc.b)); got != tc.want {
			t.Errorf("overlap(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestOverlapThreeWay(t *testing.T) {
	if !overlapAll(pat(t, "//b"), pat(t, "/a//node()"), pat(t, "/descendant-or-self::node()")) {
		t.Error("three-way overlap on /a/b missed")
	}
	if overlapAll(pat(t, "//b"), pat(t, "/a/c"), pat(t, "/descendant-or-self::node()")) {
		t.Error("three-way overlap claimed where pairwise disjoint")
	}
}

func TestContains(t *testing.T) {
	cases := []struct {
		outer, inner string
		want         bool
	}{
		{"/descendant-or-self::node()", "//diagnosis/node()", true},
		{"//diagnosis/node()", "//diagnosis/node()", true},
		{"/a/*", "/a/b", true},
		{"/a/b", "/a/*", false},
		{"//b", "/a/b", true},
		{"/a/b", "//b", false},
		{"/a//b", "/a/c/b", true},
		{"//node()", "//diagnosis", true},
		{"//diagnosis", "//node()", false},
		// The descendant axis never traverses attributes, so even the
		// paper's rule-10 path does not cover attribute nodes.
		{"/descendant-or-self::node()", "/a/@id", false},
		{"//node()", "/a/@id", false},
		{"/a", "/a/attribute::text()", true}, // empty inner is contained in anything
	}
	for _, tc := range cases {
		if got := contains(pat(t, tc.outer), pat(t, tc.inner)); got != tc.want {
			t.Errorf("contains(%q ⊇ %q) = %v, want %v", tc.outer, tc.inner, got, tc.want)
		}
	}
}

func TestUniversalPatternReachesAttributes(t *testing.T) {
	// The over-approximation for reverse axes etc. must cover attribute
	// nodes and their text values, or containment checks against it would
	// be unsound.
	univ := pat(t, "/a/parent::node()")
	for _, src := range []string{"/a/@id", "/a/@id/text()", "//text()", "/x/y/z"} {
		if !contains(univ, pat(t, src)) {
			t.Errorf("universal pattern fails to contain %q", src)
		}
	}
}
