package policyanalysis

import (
	"encoding/json"
	"strings"
	"testing"

	"securexml/internal/policy"
	"securexml/internal/subject"
)

// TestPaperPolicyClean is the headline fidelity check: the paper's own
// 12-rule policy (Fig. 4) over the Fig. 3 hierarchy is a well-formed
// policy and must produce zero findings.
func TestPaperPolicyClean(t *testing.T) {
	h := subject.PaperHierarchy()
	pol, err := policy.PaperPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(h, pol)
	if rep.Rules != 12 {
		t.Errorf("Rules = %d, want 12", rep.Rules)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("paper policy must be clean, got:\n%s", rep.Text())
	}
	if rep.HasWarnings() || rep.HasErrors() {
		t.Error("clean report must not claim warnings or errors")
	}
}

// paperRules returns the paper policy as a raw rule slice, for fixtures
// that extend it.
func paperRules(t *testing.T, h *subject.Hierarchy) []policy.Rule {
	t.Helper()
	pol, err := policy.PaperPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	var rules []policy.Rule
	for _, r := range pol.Rules() {
		rules = append(rules, *r)
	}
	return rules
}

func codesOf(rep *Report) map[string][]int64 {
	out := map[string][]int64{}
	for _, f := range rep.Findings {
		out[f.Code] = append(out[f.Code], f.Priority)
	}
	return out
}

// TestBrokenPolicyFindings extends the paper policy with deliberate
// mistakes and checks the analyzer reports exactly the expected codes:
//   - @22 re-grants read on //diagnosis/node() to secretary, which both
//     reopens deny @11 (conflict-overlap) and shadows it (dead-rule);
//   - @23 grants insert under /billing//invoice to patient, a region no
//     patient-scope rule ever makes visible (write-insert-invisible);
//   - @24 grants update there too (write-unselectable-target).
func TestBrokenPolicyFindings(t *testing.T) {
	h := subject.PaperHierarchy()
	rules := append(paperRules(t, h),
		policy.Rule{Effect: policy.Accept, Privilege: policy.Read, Path: "//diagnosis/node()", Subject: "secretary", Priority: 22},
		policy.Rule{Effect: policy.Accept, Privilege: policy.Insert, Path: "/billing//invoice", Subject: "patient", Priority: 23},
		policy.Rule{Effect: policy.Accept, Privilege: policy.Update, Path: "/billing//invoice", Subject: "patient", Priority: 24},
	)
	rep := AnalyzeRules(h, rules)
	want := map[string][]int64{
		CodeDeadRule:           {11},
		CodeConflictOverlap:    {22},
		CodeInsertInvisible:    {23},
		CodeUnselectableTarget: {24},
	}
	got := codesOf(rep)
	if len(rep.Findings) != 4 {
		t.Errorf("want exactly 4 findings, got %d:\n%s", len(rep.Findings), rep.Text())
	}
	for code, prios := range want {
		if len(got[code]) != len(prios) || got[code][0] != prios[0] {
			t.Errorf("code %s: got priorities %v, want %v\n%s", code, got[code], prios, rep.Text())
		}
	}
	for _, f := range rep.Findings {
		switch f.Code {
		case CodeDeadRule:
			if len(f.Related) != 1 || f.Related[0] != 22 {
				t.Errorf("dead-rule related = %v, want [22]", f.Related)
			}
		case CodeConflictOverlap:
			if len(f.Related) != 1 || f.Related[0] != 11 {
				t.Errorf("conflict-overlap related = %v, want [11]", f.Related)
			}
			if len(f.Subjects) != 1 || f.Subjects[0] != "beaufort" {
				t.Errorf("conflict-overlap subjects = %v, want [beaufort]", f.Subjects)
			}
		}
	}
	if !rep.HasWarnings() || rep.HasErrors() {
		t.Errorf("broken fixture must report warnings without errors (max=%s)", rep.Max())
	}
}

// TestCovertChannelHazard reproduces the §2.2 interplay: granting
// secretary update on //diagnosis/node() — where it holds position but
// read is denied — lets it rename-probe diagnoses it cannot read.
func TestCovertChannelHazard(t *testing.T) {
	h := subject.PaperHierarchy()
	rules := append(paperRules(t, h),
		policy.Rule{Effect: policy.Accept, Privilege: policy.Update, Path: "//diagnosis/node()", Subject: "secretary", Priority: 22},
	)
	rep := AnalyzeRules(h, rules)
	if len(rep.Findings) != 1 {
		t.Fatalf("want exactly the covert-channel finding, got:\n%s", rep.Text())
	}
	f := rep.Findings[0]
	if f.Code != CodeCovertChannel || f.Priority != 12 {
		t.Errorf("got %s@%d, want %s@12", f.Code, f.Priority, CodeCovertChannel)
	}
	if len(f.Related) != 1 || f.Related[0] != 22 {
		t.Errorf("related = %v, want [22]", f.Related)
	}
	if len(f.Subjects) != 1 || f.Subjects[0] != "beaufort" {
		t.Errorf("subjects = %v, want [beaufort]", f.Subjects)
	}
}

func TestErrorFindings(t *testing.T) {
	h := subject.PaperHierarchy()
	rules := []policy.Rule{
		{Effect: policy.Accept, Privilege: policy.Read, Path: "/a[", Subject: "staff", Priority: 1},
		{Effect: policy.Accept, Privilege: policy.Read, Path: "/a", Subject: "nobody", Priority: 2},
	}
	rep := AnalyzeRules(h, rules)
	got := codesOf(rep)
	if len(got[CodeBadPath]) != 1 || got[CodeBadPath][0] != 1 {
		t.Errorf("bad-path: %v", got[CodeBadPath])
	}
	if len(got[CodeUnreachableSubject]) != 1 || got[CodeUnreachableSubject][0] != 2 {
		t.Errorf("unreachable-subject: %v", got[CodeUnreachableSubject])
	}
	if !rep.HasErrors() {
		t.Error("both findings are errors")
	}
}

func TestEmptyPatternAndNoUserInScope(t *testing.T) {
	h := subject.NewHierarchy()
	if err := h.AddRole("ghost"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddRole("live"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddUser("u", "live"); err != nil {
		t.Fatal(err)
	}
	rules := []policy.Rule{
		{Effect: policy.Accept, Privilege: policy.Read, Path: "/a/attribute::text()", Subject: "live", Priority: 1},
		{Effect: policy.Accept, Privilege: policy.Read, Path: "/a", Subject: "ghost", Priority: 2},
	}
	rep := AnalyzeRules(h, rules)
	got := codesOf(rep)
	if len(got[CodeEmptyPattern]) != 1 || got[CodeEmptyPattern][0] != 1 {
		t.Errorf("empty-pattern: %v\n%s", got[CodeEmptyPattern], rep.Text())
	}
	if len(got[CodeDeadRule]) != 1 || got[CodeDeadRule][0] != 2 {
		t.Errorf("dead-rule (no user in scope): %v\n%s", got[CodeDeadRule], rep.Text())
	}
}

// TestDeadRuleNeedsExactShadower: a later rule whose pattern is an
// over-approximation (here, because of a predicate) must never count as a
// shadower, even though its abstraction contains the victim.
func TestDeadRuleNeedsExactShadower(t *testing.T) {
	h := subject.PaperHierarchy()
	rules := []policy.Rule{
		{Effect: policy.Accept, Privilege: policy.Read, Path: "/patients/p1", Subject: "staff", Priority: 1},
		{Effect: policy.Deny, Privilege: policy.Read, Path: "/patients/*[position() = 1]", Subject: "staff", Priority: 2},
	}
	rep := AnalyzeRules(h, rules)
	if got := codesOf(rep); len(got[CodeDeadRule]) != 0 {
		t.Errorf("inexact shadower must not kill rule @1:\n%s", rep.Text())
	}
}

func TestDeadRulePerUserShadowing(t *testing.T) {
	// Rule @1 grants read to staff; secretary-scope and doctor-scope rules
	// together cover every staff user only if each user has its own
	// shadower. richard (epidemiologist) has none, so @1 stays live.
	h := subject.PaperHierarchy()
	rules := []policy.Rule{
		{Effect: policy.Accept, Privilege: policy.Read, Path: "//diagnosis", Subject: "staff", Priority: 1},
		{Effect: policy.Deny, Privilege: policy.Read, Path: "/descendant-or-self::node()", Subject: "secretary", Priority: 2},
		{Effect: policy.Deny, Privilege: policy.Read, Path: "/descendant-or-self::node()", Subject: "doctor", Priority: 3},
	}
	rep := AnalyzeRules(h, rules)
	if got := codesOf(rep); len(got[CodeDeadRule]) != 0 {
		t.Errorf("rule @1 is live for richard:\n%s", rep.Text())
	}
	rules = append(rules, policy.Rule{Effect: policy.Deny, Privilege: policy.Read, Path: "/descendant-or-self::node()", Subject: "epidemiologist", Priority: 4})
	rep = AnalyzeRules(h, rules)
	got := codesOf(rep)
	if len(got[CodeDeadRule]) != 1 || got[CodeDeadRule][0] != 1 {
		t.Errorf("rule @1 now shadowed for every staff user: %v\n%s", got[CodeDeadRule], rep.Text())
	}
	for _, f := range rep.Findings {
		if f.Code == CodeDeadRule && len(f.Related) != 3 {
			t.Errorf("dead-rule related = %v, want the three per-user shadowers", f.Related)
		}
	}
}

func TestReportJSONAndText(t *testing.T) {
	h := subject.PaperHierarchy()
	rules := []policy.Rule{
		{Effect: policy.Accept, Privilege: policy.Read, Path: "/a[", Subject: "staff", Priority: 7},
	}
	rep := AnalyzeRules(h, rules)
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"severity":"error"`) {
		t.Errorf("JSON severity must be a string: %s", raw)
	}
	if !strings.Contains(rep.Text(), "bad-path rule@7") {
		t.Errorf("text output: %s", rep.Text())
	}
}
