package policyanalysis

import "securexml/internal/xpath"

// MatchableWord reports whether some root-to-node word over the patterns'
// joint alphabet reaches a configuration satisfying goal, where match[i]
// says whether pats[i] accepts the word. It is the product subset search
// the analyzer uses internally (searchWord), exported for the static query
// rewriter (internal/rewrite), which decides answer emptiness and
// profile transparency with goals the analyzer's own checks don't need.
//
// Soundness is the caller's burden, exactly as for contains/overlapAll: a
// pattern with Exact=false accepts a superset of what its expression can
// select, so "no word with match[i]" proves real emptiness, while "every
// word has match[i]" proves nothing unless pats[i].Exact holds.
func MatchableWord(pats []*xpath.Pattern, goal func(match []bool) bool) bool {
	nfas := make([]*nfa, len(pats))
	for i, p := range pats {
		nfas[i] = nfaOf(p)
	}
	return searchWord(nfas, alphabetFor(pats), goal)
}

// RootOnlyPattern returns the exact pattern matching only the document
// node (the empty word). Rewriting uses it to exempt the root from
// coverage goals: axiom 15 makes the document node visible to everyone,
// so no policy rule needs to address it.
func RootOnlyPattern() *xpath.Pattern { return rootPattern() }
