package policyanalysis

import (
	"math/rand"
	"testing"

	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/view"
	"securexml/internal/workload"
	"securexml/internal/xmltree"
)

// randomPolicy draws rules from a pool of paths and subjects that overlap
// and shadow each other often, so the dead-rule pass has real work to do.
func randomPolicy(t *testing.T, h *subject.Hierarchy, rng *rand.Rand) *policy.Policy {
	t.Helper()
	paths := []string{
		"/descendant-or-self::node()",
		"//diagnosis",
		"//diagnosis/node()",
		"/patients",
		"/patients/*",
		"/patients/node()",
		"//service",
		"//service/node()",
		"//record",
		"//note",
		"//text()",
		"/patients/*[name() = $USER]/descendant-or-self::node()",
	}
	subjects := []string{"staff", "secretary", "doctor", "epidemiologist", "patient", "beaufort", "laporte"}
	pol := policy.New()
	n := 6 + rng.Intn(10)
	for i := 0; i < n; i++ {
		r := policy.Rule{
			Effect:    policy.Effect(rng.Intn(2)),
			Privilege: policy.Privileges[rng.Intn(len(policy.Privileges))],
			Path:      paths[rng.Intn(len(paths))],
			Subject:   subjects[rng.Intn(len(subjects))],
			Priority:  int64(i + 1),
		}
		if err := pol.Add(h, r); err != nil {
			t.Fatalf("Add(%v): %v", r, err)
		}
	}
	return pol
}

// without rebuilds the policy with the rule at the given priority removed.
func without(t *testing.T, h *subject.Hierarchy, pol *policy.Policy, priority int64) *policy.Policy {
	t.Helper()
	out := policy.New()
	for _, r := range pol.Rules() {
		if r.Priority == priority {
			continue
		}
		if err := out.Add(h, *r); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestDeadRuleRemovalSoundness is the analyzer's ground-truth validation:
// over ≥100 workload-generated (hierarchy, policy) pairs, deleting any
// rule the analyzer calls dead (or empty-pattern) must leave every user's
// permission matrix and materialized view bit-identical.
func TestDeadRuleRemovalSoundness(t *testing.T) {
	const pairs = 110
	totalDead := 0
	for seed := int64(0); seed < pairs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nPatients := 3 + int(seed%4)
		h, err := workload.HospitalHierarchy(nPatients)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := workload.Hospital(workload.HospitalConfig{
			Patients:          nPatients,
			RecordsPerPatient: int(seed % 3),
			Seed:              seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		pol := randomPolicy(t, h, rng)
		rep := Analyze(h, pol)
		for _, f := range rep.Findings {
			if f.Code != CodeDeadRule && f.Code != CodeEmptyPattern {
				continue
			}
			totalDead++
			reduced := without(t, h, pol, f.Priority)
			for _, u := range h.Users() {
				assertEquivalent(t, doc, h, pol, reduced, u, seed, f)
			}
		}
	}
	if totalDead == 0 {
		t.Fatal("workload never produced a dead rule; the property was vacuous")
	}
	t.Logf("validated removal of %d dead rules across %d policies", totalDead, pairs)
}

func assertEquivalent(t *testing.T, doc *xmltree.Document, h *subject.Hierarchy, full, reduced *policy.Policy, user string, seed int64, f Finding) {
	t.Helper()
	pmFull, err := full.Evaluate(doc, h, user)
	if err != nil {
		t.Fatal(err)
	}
	pmReduced, err := reduced.Evaluate(doc, h, user)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range doc.Nodes() {
		for _, priv := range policy.Privileges {
			if pmFull.Has(n, priv) != pmReduced.Has(n, priv) {
				t.Fatalf("seed %d: removing %s@%d changed %s/%s for user %s",
					seed, f.Code, f.Priority, n.ID(), priv, user)
			}
		}
	}
	if a, b := view.Materialize(doc, pmFull).Doc.XML(), view.Materialize(doc, pmReduced).Doc.XML(); a != b {
		t.Fatalf("seed %d: removing %s@%d changed the view of user %s", seed, f.Code, f.Priority, user)
	}
}
