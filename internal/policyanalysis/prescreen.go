package policyanalysis

import "securexml/internal/xpath"

// This file holds the cheap syntactic prescreens that keep the quadratic
// analyzer passes and the repair engine's re-analysis loop tractable on
// 10k-rule corpora. Both are conservative: they may only answer "provably
// disjoint" / "no shared bucket" when the word automata would agree, so
// every exclusion they make is one the exact checks would also have made.

// quickDisjoint reports whether two patterns provably share no word, by
// per-position symbol reasoning on the fixed (gap-free) prefixes and
// suffixes of each alternative pair. False means "maybe overlapping" —
// callers fall through to the automata product.
func quickDisjoint(p, q *xpath.Pattern) bool {
	for _, pa := range p.Alts {
		for _, qa := range q.Alts {
			if !altsDisjoint(pa, qa) {
				return false
			}
		}
	}
	return true
}

// altsDisjoint reports whether two alternatives provably accept no common
// word. A step consumes exactly one symbol; a Gap admits zero or more
// extra symbols before its step. Hence steps before the first gap sit at
// exact positions from the word's start, steps after the last gap at exact
// positions from its end, and a gap-free alternative fixes the word length
// outright.
func altsDisjoint(a, b []xpath.PatternStep) bool {
	gapA, gapB := hasGap(a), hasGap(b)
	if !gapA && !gapB && len(a) != len(b) {
		return true
	}
	if !gapA && len(b) > len(a) {
		return true
	}
	if !gapB && len(a) > len(b) {
		return true
	}
	n := fixedPrefix(a)
	if m := fixedPrefix(b); m < n {
		n = m
	}
	for i := 0; i < n; i++ {
		if !stepsCompatible(a[i], b[i]) {
			return true
		}
	}
	s := fixedSuffix(a)
	if t := fixedSuffix(b); t < s {
		s = t
	}
	for k := 0; k < s; k++ {
		if !stepsCompatible(a[len(a)-1-k], b[len(b)-1-k]) {
			return true
		}
	}
	return false
}

func hasGap(alt []xpath.PatternStep) bool {
	for _, st := range alt {
		if st.Gap {
			return true
		}
	}
	return false
}

// fixedPrefix counts the leading steps at exact word positions: everything
// before the first gap.
func fixedPrefix(alt []xpath.PatternStep) int {
	for i, st := range alt {
		if st.Gap {
			return i
		}
	}
	return len(alt)
}

// fixedSuffix counts the trailing steps at exact positions from the word's
// end: the last step always is; walking backwards, a step with a gap
// before it is the last one included.
func fixedSuffix(alt []xpath.PatternStep) int {
	for i := len(alt) - 1; i >= 0; i-- {
		if alt[i].Gap {
			return len(alt) - i
		}
	}
	return len(alt)
}

// acceptsCat mirrors stepMatches per symbol category, ignoring names.
func acceptsCat(st xpath.PatternStep, c symCat) bool {
	switch st.Kind {
	case xpath.PatAnyNode:
		return true
	case xpath.PatAnyChild:
		return c != catAttr
	case xpath.PatElement, xpath.PatNamedElement:
		return c == catElem
	case xpath.PatText:
		return c == catText
	case xpath.PatComment:
		return c == catComment
	case xpath.PatPI:
		return c == catPI
	case xpath.PatAnyAttribute, xpath.PatNamedAttribute:
		return c == catAttr
	default:
		return false
	}
}

// stepsCompatible reports whether some symbol satisfies both steps — the
// per-position dual of stepMatches. Only two named steps of the same
// category with different names exclude their whole category.
func stepsCompatible(a, b xpath.PatternStep) bool {
	for _, c := range []symCat{catElem, catAttr, catText, catComment, catPI} {
		if !acceptsCat(a, c) || !acceptsCat(b, c) {
			continue
		}
		if c == catElem && a.Kind == xpath.PatNamedElement && b.Kind == xpath.PatNamedElement && a.Name != b.Name {
			continue
		}
		if c == catAttr && a.Kind == xpath.PatNamedAttribute && b.Kind == xpath.PatNamedAttribute && a.Name != b.Name {
			continue
		}
		return true
	}
	return false
}

// discriminator assigns a pattern its pairwise-comparison bucket: the
// depth-2 element name when every alternative pins one (no gap through the
// first two steps, a named element at position 1) and they all agree, else
// the wildcard bucket "". Two patterns in distinct non-wildcard buckets
// are provably disjoint under altsDisjoint (position 1 is fixed in both
// and the names differ), which is what lets candidate enumeration skip
// cross-bucket pairs. Generated corpora put each object's rules under
// /<root>/<object>/…, so their rules spread across buckets and the
// pairwise passes touch only same-object plus wildcard rules.
func discriminator(p *xpath.Pattern) string {
	key := ""
	for _, alt := range p.Alts {
		if len(alt) < 2 || alt[0].Gap || alt[1].Gap || alt[1].Kind != xpath.PatNamedElement {
			return ""
		}
		if key == "" {
			key = alt[1].Name
		} else if key != alt[1].Name {
			return ""
		}
	}
	return key
}
