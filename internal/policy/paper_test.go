package policy

// Reproduction of the axiom-13 hospital policy and the perm matrix it
// induces under axiom 14 (experiment E5 in DESIGN.md).

import (
	"testing"

	"securexml/internal/subject"
	"securexml/internal/xmltree"
)

func paperSetup(t *testing.T) (*xmltree.Document, *subject.Hierarchy, *Policy) {
	t.Helper()
	d, err := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := subject.PaperHierarchy()
	p, err := PaperPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	return d, h, p
}

func TestPaperPolicyShape(t *testing.T) {
	_, _, p := paperSetup(t)
	if p.Len() != 12 {
		t.Fatalf("policy has %d rules, want 12", p.Len())
	}
	// Priorities 10..21 ascending, as in axiom 13.
	for i, r := range p.Rules() {
		if r.Priority != int64(10+i) {
			t.Errorf("rule %d priority %d, want %d", i, r.Priority, 10+i)
		}
	}
}

// permsFor evaluates the paper policy for a user.
func permsFor(t *testing.T, user string) (*xmltree.Document, *Perms) {
	t.Helper()
	d, h, p := paperSetup(t)
	pm, err := p.Evaluate(d, h, user)
	if err != nil {
		t.Fatal(err)
	}
	return d, pm
}

// TestSecretaryPerms: rule 1 grants read everywhere, rule 2 strips diagnosis
// content, rule 3 grants position on it, rules 8–9 allow inserting files and
// updating patient names.
func TestSecretaryPerms(t *testing.T) {
	d, pm := permsFor(t, "beaufort")
	diagText := node(t, d, "/patients/franck/diagnosis/text()")
	if pm.Has(diagText, Read) {
		t.Error("secretary can read diagnosis content (rule 2 violated)")
	}
	if !pm.Has(diagText, Position) {
		t.Error("secretary lacks position on diagnosis content (rule 3 violated)")
	}
	if !pm.Has(node(t, d, "/patients/franck/diagnosis"), Read) {
		t.Error("secretary cannot read the diagnosis element itself (rule 1)")
	}
	if !pm.Has(node(t, d, "/patients/franck/service/text()"), Read) {
		t.Error("secretary cannot read service content (rule 1)")
	}
	if !pm.Has(node(t, d, "/patients"), Insert) {
		t.Error("secretary cannot insert medical files (rule 8)")
	}
	if !pm.Has(node(t, d, "/patients/franck"), Update) {
		t.Error("secretary cannot update patient names (rule 9)")
	}
	if pm.Has(node(t, d, "/patients/franck"), Delete) {
		t.Error("secretary can delete patients")
	}
}

// TestDoctorPerms: doctors read everything (rule 1) and manage diagnoses
// (rules 10–12).
func TestDoctorPerms(t *testing.T) {
	d, pm := permsFor(t, "laporte")
	for _, path := range []string{
		"/patients", "/patients/franck", "/patients/franck/diagnosis/text()",
		"/patients/robert/service/text()",
	} {
		if !pm.Has(node(t, d, path), Read) {
			t.Errorf("doctor cannot read %s", path)
		}
	}
	if !pm.Has(node(t, d, "/patients/franck/diagnosis"), Insert) {
		t.Error("doctor cannot pose a diagnosis (rule 10)")
	}
	if !pm.Has(node(t, d, "/patients/franck/diagnosis/text()"), Update) {
		t.Error("doctor cannot update a diagnosis (rule 11)")
	}
	if !pm.Has(node(t, d, "/patients/franck/diagnosis/text()"), Delete) {
		t.Error("doctor cannot delete a diagnosis (rule 12)")
	}
	if pm.Has(node(t, d, "/patients"), Insert) {
		t.Error("doctor can insert medical files (secretary-only, rule 8)")
	}
}

// TestEpidemiologistPerms: rules 6–7 replace read with position on patient
// names; everything below remains readable via rule 1.
func TestEpidemiologistPerms(t *testing.T) {
	d, pm := permsFor(t, "richard")
	franck := node(t, d, "/patients/franck")
	if pm.Has(franck, Read) {
		t.Error("epidemiologist can read patient names (rule 6 violated)")
	}
	if !pm.Has(franck, Position) {
		t.Error("epidemiologist lacks position on patient names (rule 7 violated)")
	}
	if !pm.Has(node(t, d, "/patients/franck/diagnosis/text()"), Read) {
		t.Error("epidemiologist cannot read diagnosis content (rule 1)")
	}
	if !pm.Has(node(t, d, "/patients"), Read) {
		t.Error("epidemiologist cannot read the patients element")
	}
}

// TestPatientPerms: rules 4–5 — a patient reads the patients element and
// their own subtree, nothing of other patients; no staff privileges at all.
func TestPatientPerms(t *testing.T) {
	d, pm := permsFor(t, "robert")
	if !pm.Has(node(t, d, "/patients"), Read) {
		t.Error("patient cannot read /patients (rule 4)")
	}
	for _, path := range []string{
		"/patients/robert", "/patients/robert/service",
		"/patients/robert/diagnosis", "/patients/robert/diagnosis/text()",
	} {
		if !pm.Has(node(t, d, path), Read) {
			t.Errorf("robert cannot read his own %s (rule 5)", path)
		}
	}
	for _, path := range []string{
		"/patients/franck", "/patients/franck/diagnosis/text()",
	} {
		if pm.Has(node(t, d, path), Read) {
			t.Errorf("robert can read franck's %s", path)
		}
		if pm.Has(node(t, d, path), Position) {
			t.Errorf("robert holds position on franck's %s", path)
		}
	}
	for _, priv := range []Privilege{Insert, Update, Delete} {
		if pm.Has(node(t, d, "/patients/robert/diagnosis"), priv) {
			t.Errorf("patient holds %s on his diagnosis", priv)
		}
	}
}

// TestPermMatrixSummary: the complete perm(s, n, read|position) matrix on
// the paper document for all four paper roles' users — pins down the exact
// semantics of rule interactions.
func TestPermMatrixSummary(t *testing.T) {
	type row struct {
		user              string
		readable, posOnly int // node counts over the 12-node document
	}
	// 12 nodes: /, patients, franck, service, text, diagnosis, text,
	//           robert, service, text, diagnosis, text.
	want := []row{
		{"beaufort", 10, 2}, // all but the two diagnosis texts; those are position-only
		{"laporte", 12, 0},  // everything
		{"richard", 10, 2},  // all but the two patient-name elements
		{"robert", 6, 0},    // /patients + his 4-node subtree + ... (see below)
	}
	for _, w := range want {
		d, pm := permsFor(t, w.user)
		var readable, posOnly int
		for _, n := range d.Nodes() {
			switch {
			case pm.Has(n, Read):
				readable++
			case pm.Has(n, Position):
				posOnly++
			}
		}
		if readable != w.readable || posOnly != w.posOnly {
			t.Errorf("%s: readable=%d posOnly=%d, want %d/%d",
				w.user, readable, posOnly, w.readable, w.posOnly)
		}
	}
}
