// Differential oracle for the shared-scan pipeline: EvaluateShared must
// agree with the reference per-rule Evaluate cell-for-cell — every node ×
// every privilege × every user — for the paper policy, the scaled policy
// and seeded randomized policies (which mix chain-only, $USER-dependent
// and out-of-fragment paths, so the bank, the rule cache and the per-rule
// fallback are all on the hook), across documents mutated by seeded
// workload.OpStream sequences. On mismatch the op sequence is greedily
// minimized, PR 4 style.
//
// External test package: workload imports policy, so the oracle cannot
// live inside it.
package policy_test

import (
	"fmt"
	"strings"
	"testing"

	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/workload"
	"securexml/internal/xmltree"
	"securexml/internal/xupdate"
)

const (
	ssPatients   = 6
	ssRecords    = 2
	ssOps        = 60
	ssCheckEvery = 10
)

var (
	ssSeeds = []int64{1, 2, 3}
	ssKinds = []string{"paper", "scaled", "random"}
)

// ssEnv builds a fresh document, hierarchy and policy of the given kind.
func ssEnv(t *testing.T, seed int64, kind string) (*xmltree.Document, *subject.Hierarchy, *policy.Policy) {
	t.Helper()
	d, err := workload.Hospital(workload.HospitalConfig{Patients: ssPatients, RecordsPerPatient: ssRecords, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	h, err := workload.HospitalHierarchy(ssPatients)
	if err != nil {
		t.Fatal(err)
	}
	var p *policy.Policy
	switch kind {
	case "paper":
		p, err = workload.HospitalPolicy(h)
	case "scaled":
		p, err = workload.ScaledPolicy(h, 10)
	case "random":
		p, err = randomPolicy(h, seed)
	default:
		t.Fatalf("unknown policy kind %q", kind)
	}
	if err != nil {
		t.Fatal(err)
	}
	return d, h, p
}

// randomPolicy draws rules from a path pool spanning all four quadrants of
// the shared-scan partition: (chain-only | fallback) × ($USER-independent
// | $USER-dependent). Priorities are strictly increasing per Add's
// invariant; seed rotates effects, privileges and subjects.
func randomPolicy(h *subject.Hierarchy, seed int64) (*policy.Policy, error) {
	paths := []string{
		"/patients",                            // chain, indep
		"//service",                            // chain, indep
		"//diagnosis/node()",                   // chain, indep
		"/patients/*/record",                   // chain, indep
		"//record[starts-with(name(), 'rec')]", // chain pred, indep
		"/patients/*[name() = $USER]/descendant-or-self::node()", // chain, dep
		"/patients/*[name() = $USER]",                            // chain, dep
		"/patients/*[1]",                                         // positional pred: fallback, indep
		"//record[note]",                                         // location-path pred: fallback, indep
		"/patients/*[name() = $USER]/record[note]",               // fallback, dep
	}
	subjects := []string{"staff", "secretary", "doctor", "patient", "epidemiologist"}
	p := policy.New()
	n := 8 + int(seed%5)
	for i := 0; i < n; i++ {
		k := (int(seed) + i*7) % len(paths)
		eff := policy.Accept
		if (int(seed)+i)%3 == 0 {
			eff = policy.Deny
		}
		r := policy.Rule{
			Effect:    eff,
			Privilege: policy.Privileges[(int(seed)+i)%len(policy.Privileges)],
			Path:      paths[k],
			Subject:   subjects[(int(seed)+i*3)%len(subjects)],
			Priority:  int64(50 + i),
		}
		if err := p.Add(h, r); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// permsDiff compares the two evaluations cell-for-cell over every node of
// the document and every privilege, returning "" when identical.
func permsDiff(d *xmltree.Document, ref, got *policy.Perms) string {
	for _, n := range d.Nodes() {
		id := n.ID().String()
		for _, priv := range policy.Privileges {
			r, g := ref.HasID(id, priv), got.HasID(id, priv)
			if r != g {
				return fmt.Sprintf("node %s (%s) priv %s: reference=%v shared=%v", id, n.Label(), priv, r, g)
			}
		}
	}
	return ""
}

// runShared replays ops over a fresh environment, diffing EvaluateShared
// against Evaluate for every user at every checkpoint. One RuleCache
// persists across the whole run, so its self-healing on document-version
// change is exercised at every checkpoint after the first. Returns the
// index of the op whose checkpoint failed (-1 on success).
func runShared(t *testing.T, seed int64, kind string, ops []*xupdate.Op) (int, string) {
	t.Helper()
	d, h, p := ssEnv(t, seed, kind)
	cache := policy.NewRuleCache()
	check := func() string {
		for _, u := range h.Users() {
			ref, err := p.Evaluate(d, h, u)
			if err != nil {
				return fmt.Sprintf("reference evaluate(%s): %v", u, err)
			}
			got, err := p.EvaluateShared(d, h, u, cache)
			if err != nil {
				return fmt.Sprintf("shared evaluate(%s): %v", u, err)
			}
			if diff := permsDiff(d, ref, got); diff != "" {
				return fmt.Sprintf("user %s: %s", u, diff)
			}
			// A nil cache must agree too (pure shared-walk path).
			got2, err := p.EvaluateShared(d, h, u, nil)
			if err != nil {
				return fmt.Sprintf("shared evaluate(%s, nil cache): %v", u, err)
			}
			if diff := permsDiff(d, ref, got2); diff != "" {
				return fmt.Sprintf("user %s (nil cache): %s", u, diff)
			}
		}
		return ""
	}
	if diff := check(); diff != "" {
		return 0, "initial document: " + diff
	}
	for i, op := range ops {
		if _, err := xupdate.Execute(d, op, nil); err != nil {
			return i, fmt.Sprintf("execute: %v", err)
		}
		if (i+1)%ssCheckEvery != 0 && i != len(ops)-1 {
			continue
		}
		if diff := check(); diff != "" {
			return i, fmt.Sprintf("after op %d (%s %s): %s", i, op.Kind, op.Select, diff)
		}
	}
	return -1, ""
}

// minimizeSharedOps greedily drops ops while the sequence still fails.
func minimizeSharedOps(t *testing.T, seed int64, kind string, ops []*xupdate.Op) []*xupdate.Op {
	t.Helper()
	cur := append([]*xupdate.Op(nil), ops...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			trial := append(append([]*xupdate.Op(nil), cur[:i]...), cur[i+1:]...)
			if idx, _ := runShared(t, seed, kind, trial); idx >= 0 {
				cur = trial
				changed = true
				i--
			}
		}
	}
	return cur
}

func dumpSharedOps(ops []*xupdate.Op) string {
	var b strings.Builder
	for i, op := range ops {
		fmt.Fprintf(&b, "  %2d: %s select=%q", i, op.Kind, op.Select)
		if op.NewValue != "" {
			fmt.Fprintf(&b, " vnew=%q", op.NewValue)
		}
		if op.Content != nil {
			fmt.Fprintf(&b, " content=%q", op.Content.XML())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestSharedScanDifferentialOracle(t *testing.T) {
	for _, kind := range ssKinds {
		for _, seed := range ssSeeds {
			kind, seed := kind, seed
			t.Run(fmt.Sprintf("%s/seed=%d", kind, seed), func(t *testing.T) {
				d, _, _ := ssEnv(t, seed, kind)
				stream := workload.OpStream(workload.OpConfig{Doc: d, Seed: seed})
				var ops []*xupdate.Op
				for i := 0; i < ssOps; i++ {
					op, err := stream.Next()
					if err != nil {
						t.Fatal(err)
					}
					ops = append(ops, op)
					if _, err := xupdate.Execute(d, op, nil); err != nil {
						t.Fatalf("generating op %d: %v", i, err)
					}
				}
				if idx, diff := runShared(t, seed, kind, ops); idx >= 0 {
					minimized := minimizeSharedOps(t, seed, kind, ops[:idx+1])
					t.Fatalf("shared-scan mismatch at op %d:\n%s\nminimized reproducer (%d ops, %s seed %d):\n%s",
						idx, diff, len(minimized), kind, seed, dumpSharedOps(minimized))
				}
			})
		}
	}
}

// TestRuleCacheReuse pins the cross-user sharing behavior itself: after
// one user's evaluation fills the cache, a second user's evaluation over
// the same snapshot must serve the $USER-independent sets from it (and
// still agree with the reference).
func TestRuleCacheReuse(t *testing.T) {
	d, h, p := ssEnv(t, 1, "paper")
	cache := policy.NewRuleCache()
	users := []string{"beaufort", "laporte", "richard", "p0", "p1"}
	for _, u := range users {
		ref, err := p.Evaluate(d, h, u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.EvaluateShared(d, h, u, cache)
		if err != nil {
			t.Fatal(err)
		}
		if diff := permsDiff(d, ref, got); diff != "" {
			t.Fatalf("user %s: %s", u, diff)
		}
	}
}
