package policy

import (
	"fmt"

	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

// NodeEvaluator re-runs axiom 14 for a single node in O(rules × depth),
// without evaluating any rule path over the whole document. It exists for
// incremental view maintenance: after an update touches a subtree, only
// the perm cells of that subtree need recomputing.
//
// It is only constructible when every rule applicable to the user compiles
// to an xpath.NodeMatcher — i.e. membership of a node in each rule's
// select set depends solely on the node's root-to-node chain. That is the
// soundness gate: under it, an update can only change perms inside the
// subtree it touched, so Rescore over that subtree fully reconciles the
// relation (see internal/view/incremental.go).
type NodeEvaluator struct {
	user  string
	rules []nodeRule
	vars  xpath.Vars
}

// nodeRule is one applicable rule in per-node membership form.
type nodeRule struct {
	privilege Privilege
	effect    Effect
	priority  int64
	matcher   *xpath.NodeMatcher
}

// NodeEvaluator compiles the per-node form of the policy for user. It
// returns (nil, false) when any rule applicable to user (via isa) falls
// outside the matchable XPath fragment; callers then fall back to full
// Evaluate + Materialize.
func (p *Policy) NodeEvaluator(h *subject.Hierarchy, user string) (*NodeEvaluator, bool) {
	ne := &NodeEvaluator{
		user: user,
		vars: xpath.Vars{"USER": xpath.String(user)},
	}
	for _, r := range p.rules { // ascending priority, like Evaluate
		if !h.ISA(user, r.Subject) {
			continue
		}
		m, ok := r.compiled.NodeMatcher()
		if !ok {
			return nil, false
		}
		ne.rules = append(ne.rules, nodeRule{
			privilege: r.Privilege,
			effect:    r.Effect,
			priority:  r.Priority,
			matcher:   m,
		})
	}
	return ne, true
}

// User returns the subject the evaluator was compiled for.
func (ne *NodeEvaluator) User() string { return ne.user }

// Rescore recomputes pm's grant mask for the single node n, replacing
// whatever Evaluate (or a previous Rescore) stored. The conflict
// resolution is identical to Evaluate's: per privilege, the applicable
// rule with the greatest priority wins, and only an accept grants.
func (ne *NodeEvaluator) Rescore(pm *Perms, n *xmltree.Node) error {
	var cells [numPrivileges]struct {
		priority int64
		effect   Effect
	}
	for _, r := range ne.rules { // ascending priority: later rules overwrite
		ok, err := r.matcher.Match(n, ne.vars)
		ruleEvals.Inc()
		if err != nil {
			return fmt.Errorf("policy: rescoring node %s: %w", n.ID(), err)
		}
		if !ok {
			continue
		}
		if r.priority >= cells[r.privilege].priority {
			cells[r.privilege] = struct {
				priority int64
				effect   Effect
			}{priority: r.priority, effect: r.effect}
		}
	}
	var mask uint8
	for _, priv := range Privileges {
		if cells[priv].priority > 0 && cells[priv].effect == Accept {
			mask |= 1 << uint(priv)
		}
	}
	id := n.ID().String()
	pm.mutable()
	if mask == 0 {
		delete(pm.grants, id)
	} else {
		pm.grants[id] = mask
	}
	return nil
}

// Forget drops the grant cells for removed node ids. Persistent labels can
// be re-allocated after a removal (Scheme.Between may hand back a key that
// was freed), so stale cells must be scrubbed before any reuse.
func (pm *Perms) Forget(ids ...string) {
	pm.mutable()
	for _, id := range ids {
		delete(pm.grants, id)
	}
}

// SetDocVersion re-stamps the document version the permissions are current
// for, after incremental maintenance brought them up to date.
func (pm *Perms) SetDocVersion(v uint64) { pm.version = v }
