package policy

import (
	"testing"

	"securexml/internal/subject"
	"securexml/internal/xmltree"
)

const nodeevalXML = `<patients>
  <franck><service>otolaryngology</service><diagnosis>tonsillitis</diagnosis></franck>
  <robert><service>pneumology</service><diagnosis>pneumonia</diagnosis></robert>
</patients>`

func nodeevalEnv(t *testing.T) (*xmltree.Document, *subject.Hierarchy, *Policy) {
	t.Helper()
	d, err := xmltree.ParseString(nodeevalXML, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := subject.NewHierarchy()
	if err := h.AddRole("staff"); err != nil {
		t.Fatal(err)
	}
	for _, role := range []string{"secretary", "doctor", "epidemiologist"} {
		if err := h.AddRole(role, "staff"); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.AddRole("patient"); err != nil {
		t.Fatal(err)
	}
	for user, role := range map[string]string{"beaufort": "secretary", "laporte": "doctor", "richard": "epidemiologist", "franck": "patient", "robert": "patient"} {
		if err := h.AddUser(user, role); err != nil {
			t.Fatal(err)
		}
	}
	p, err := PaperPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	return d, h, p
}

// TestRescoreMatchesEvaluate: for every user of the paper scenario,
// rescoring each node individually must reproduce exactly the grant masks
// the full Evaluate computes — axiom 14 node by node.
func TestRescoreMatchesEvaluate(t *testing.T) {
	d, h, p := nodeevalEnv(t)
	for _, user := range []string{"beaufort", "laporte", "richard", "franck", "robert"} {
		ne, ok := p.NodeEvaluator(h, user)
		if !ok {
			t.Fatalf("%s: paper policy should be matchable", user)
		}
		want, err := p.Evaluate(d, h, user)
		if err != nil {
			t.Fatal(err)
		}
		got := &Perms{user: user, version: d.Version(), grants: make(map[string]uint8)}
		for _, n := range d.Nodes() {
			if err := ne.Rescore(got, n); err != nil {
				t.Fatalf("%s rescore %s: %v", user, n.ID(), err)
			}
		}
		if len(got.grants) != len(want.grants) {
			t.Errorf("%s: rescore produced %d granted nodes, Evaluate %d", user, len(got.grants), len(want.grants))
		}
		for id, mask := range want.grants {
			if got.grants[id] != mask {
				t.Errorf("%s node %s: rescore mask %08b, Evaluate %08b", user, id, got.grants[id], mask)
			}
		}
		for id := range got.grants {
			if _, ok := want.grants[id]; !ok {
				t.Errorf("%s node %s: rescore granted, Evaluate did not", user, id)
			}
		}
	}
}

// TestRescoreOverwritesStale: Rescore must replace a stale mask, deleting
// the cell entirely when no privilege remains.
func TestRescoreOverwritesStale(t *testing.T) {
	d, h, p := nodeevalEnv(t)
	ne, ok := p.NodeEvaluator(h, "richard")
	if !ok {
		t.Fatal("not matchable")
	}
	n := d.RootElement().Children()[0] // franck element: position-only for the epidemiologist
	pm := &Perms{user: "richard", grants: map[string]uint8{
		n.ID().String(): 1 << uint(Read), // stale: pretend read was granted
	}}
	if err := ne.Rescore(pm, n); err != nil {
		t.Fatal(err)
	}
	if pm.Has(n, Read) {
		t.Error("stale read grant survived rescore")
	}
	if !pm.Has(n, Position) {
		t.Error("position grant missing after rescore")
	}
	// A node with no privileges at all loses its cell: for the patient
	// franck, nothing grants anything inside robert's subtree.
	neF, ok := p.NodeEvaluator(h, "franck")
	if !ok {
		t.Fatal("not matchable")
	}
	txt := d.RootElement().Children()[1].Children()[0].Children()[0] // robert's service text
	pmF := &Perms{user: "franck", grants: map[string]uint8{
		txt.ID().String(): 1 << uint(Delete),
	}}
	if err := neF.Rescore(pmF, txt); err != nil {
		t.Fatal(err)
	}
	if _, stale := pmF.grants[txt.ID().String()]; stale {
		t.Error("empty mask should delete the grant cell")
	}
}

// TestNodeEvaluatorIneligible: a rule with a positional predicate applicable
// to the user defeats compilation; the same rule for an unrelated subject
// does not.
func TestNodeEvaluatorIneligible(t *testing.T) {
	d, h, p := nodeevalEnv(t)
	_ = d
	if err := p.Grant(h, Read, "/patients/*[1]", "doctor"); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.NodeEvaluator(h, "laporte"); ok {
		t.Error("positional rule applicable to laporte should defeat NodeEvaluator")
	}
	if _, ok := p.NodeEvaluator(h, "franck"); !ok {
		t.Error("rule for doctor should not affect the patient's evaluator")
	}
}

// TestPermsForget scrubs removed ids.
func TestPermsForget(t *testing.T) {
	pm := &Perms{grants: map[string]uint8{"a": 1, "b": 2, "c": 4}}
	pm.Forget("a", "c", "zzz")
	if _, ok := pm.grants["a"]; ok {
		t.Error("a survived Forget")
	}
	if _, ok := pm.grants["c"]; ok {
		t.Error("c survived Forget")
	}
	if pm.grants["b"] != 2 {
		t.Error("b damaged by Forget")
	}
}
