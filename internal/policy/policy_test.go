package policy

import (
	"errors"
	"strings"
	"testing"

	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

const medXML = `<patients><franck><service>otolaryngology</service><diagnosis>tonsillitis</diagnosis></franck><robert><service>pneumology</service><diagnosis>pneumonia</diagnosis></robert></patients>`

func setup(t *testing.T) (*xmltree.Document, *subject.Hierarchy) {
	t.Helper()
	d, err := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return d, subject.PaperHierarchy()
}

func node(t *testing.T, d *xmltree.Document, path string) *xmltree.Node {
	t.Helper()
	ns, err := xpath.Select(d, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 {
		t.Fatalf("%s selected %d nodes, want 1", path, len(ns))
	}
	return ns[0]
}

func TestPrivilegeStringParse(t *testing.T) {
	for _, p := range Privileges {
		got, err := ParsePrivilege(p.String())
		if err != nil || got != p {
			t.Errorf("round trip of %s failed: %v, %v", p, got, err)
		}
	}
	if _, err := ParsePrivilege("fly"); err == nil {
		t.Error("unknown privilege parsed")
	}
	if got, err := ParsePrivilege(" READ "); err != nil || got != Read {
		t.Errorf("case/space-insensitive parse: %v, %v", got, err)
	}
	if !strings.Contains(Privilege(9).String(), "9") {
		t.Error("unknown privilege String")
	}
	if Accept.String() != "accept" || Deny.String() != "deny" {
		t.Error("Effect.String wrong")
	}
}

func TestAddValidation(t *testing.T) {
	_, h := setup(t)
	p := New()
	if err := p.Add(h, Rule{Effect: Accept, Privilege: Read, Path: "//x", Subject: "ghost", Priority: 1}); !errors.Is(err, ErrUnknownSubject) {
		t.Errorf("unknown subject: %v", err)
	}
	if err := p.Add(h, Rule{Effect: Accept, Privilege: Read, Path: "//[", Subject: "staff", Priority: 1}); err == nil {
		t.Error("bad path accepted")
	}
	if err := p.Add(h, Rule{Effect: Accept, Privilege: Privilege(9), Path: "//x", Subject: "staff", Priority: 1}); err == nil {
		t.Error("bad privilege accepted")
	}
	if err := p.Add(h, Rule{Effect: Accept, Privilege: Read, Path: "//x", Subject: "staff", Priority: 0}); err == nil {
		t.Error("zero priority accepted")
	}
	if err := p.Add(h, Rule{Effect: Accept, Privilege: Read, Path: "//x", Subject: "staff", Priority: 5}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(h, Rule{Effect: Deny, Privilege: Read, Path: "//y", Subject: "staff", Priority: 5}); !errors.Is(err, ErrDuplicatePriority) {
		t.Errorf("duplicate priority: %v", err)
	}
}

func TestGrantRevokeAutoPriority(t *testing.T) {
	_, h := setup(t)
	p := New()
	if err := p.Grant(h, Read, "//service", "staff"); err != nil {
		t.Fatal(err)
	}
	if err := p.Revoke(h, Read, "//service", "secretary"); err != nil {
		t.Fatal(err)
	}
	rules := p.Rules()
	if len(rules) != 2 || rules[0].Priority >= rules[1].Priority {
		t.Fatalf("auto priorities wrong: %v", rules)
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
}

func TestEvaluateLatestRuleWins(t *testing.T) {
	d, h := setup(t)
	p := New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Grant to staff, deny to secretary (later), re-grant to beaufort (latest).
	must(p.Grant(h, Read, "//service", "staff"))
	must(p.Revoke(h, Read, "//service", "secretary"))
	svc := node(t, d, "/patients/franck/service")

	perms := func(user string) *Perms {
		pm, err := p.Evaluate(d, h, user)
		if err != nil {
			t.Fatal(err)
		}
		return pm
	}
	if !perms("laporte").Has(svc, Read) {
		t.Error("doctor lost read (deny targeted secretaries)")
	}
	if perms("beaufort").Has(svc, Read) {
		t.Error("secretary kept read after later deny")
	}
	// A later accept overrides the deny again.
	must(p.Grant(h, Read, "//service", "beaufort"))
	if !perms("beaufort").Has(svc, Read) {
		t.Error("later accept did not override deny")
	}
	// But an even later deny on a covering path wins once more.
	must(p.Revoke(h, Read, "//*", "beaufort"))
	if perms("beaufort").Has(svc, Read) {
		t.Error("latest covering deny ignored")
	}
}

func TestEvaluateEarlierDenyDoesNotDefeatLaterAccept(t *testing.T) {
	// Axiom 14: only a deny with t' > t defeats an accept at t.
	d, h := setup(t)
	p := New()
	if err := p.Revoke(h, Read, "//service", "staff"); err != nil {
		t.Fatal(err)
	}
	if err := p.Grant(h, Read, "//service", "staff"); err != nil {
		t.Fatal(err)
	}
	pm, err := p.Evaluate(d, h, "laporte")
	if err != nil {
		t.Fatal(err)
	}
	if !pm.Has(node(t, d, "/patients/franck/service"), Read) {
		t.Error("earlier deny defeated later accept")
	}
}

func TestEvaluateClosedWorld(t *testing.T) {
	d, h := setup(t)
	p := New() // no rules at all
	pm, err := p.Evaluate(d, h, "laporte")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range d.Nodes() {
		for _, priv := range Privileges {
			if pm.Has(n, priv) {
				t.Fatalf("perm(%s, %s, %s) granted with an empty policy", "laporte", n.ID(), priv)
			}
		}
	}
}

func TestEvaluateRoleInheritance(t *testing.T) {
	d, h := setup(t)
	p := New()
	if err := p.Grant(h, Delete, "//diagnosis", "staff"); err != nil {
		t.Fatal(err)
	}
	diag := node(t, d, "/patients/franck/diagnosis")
	for _, user := range []string{"laporte", "beaufort", "richard"} {
		pm, err := p.Evaluate(d, h, user)
		if err != nil {
			t.Fatal(err)
		}
		if !pm.Has(diag, Delete) {
			t.Errorf("staff rule does not apply to %s", user)
		}
	}
	// Patients are not staff.
	pm, err := p.Evaluate(d, h, "robert")
	if err != nil {
		t.Fatal(err)
	}
	if pm.Has(diag, Delete) {
		t.Error("staff rule leaked to patient")
	}
}

func TestEvaluateUserVariable(t *testing.T) {
	d, h := setup(t)
	p := New()
	if err := p.Grant(h, Read, "/patients/*[name() = $USER]", "patient"); err != nil {
		t.Fatal(err)
	}
	franckNode := node(t, d, "/patients/franck")
	robertNode := node(t, d, "/patients/robert")
	pmF, err := p.Evaluate(d, h, "franck")
	if err != nil {
		t.Fatal(err)
	}
	if !pmF.Has(franckNode, Read) || pmF.Has(robertNode, Read) {
		t.Error("$USER binding wrong for franck")
	}
	pmR, err := p.Evaluate(d, h, "robert")
	if err != nil {
		t.Fatal(err)
	}
	if !pmR.Has(robertNode, Read) || pmR.Has(franckNode, Read) {
		t.Error("$USER binding wrong for robert")
	}
}

func TestEvaluatePrivilegesIndependent(t *testing.T) {
	d, h := setup(t)
	p := New()
	if err := p.Grant(h, Read, "//service", "staff"); err != nil {
		t.Fatal(err)
	}
	if err := p.Revoke(h, Update, "//service", "staff"); err != nil {
		t.Fatal(err)
	}
	pm, err := p.Evaluate(d, h, "laporte")
	if err != nil {
		t.Fatal(err)
	}
	svc := node(t, d, "/patients/franck/service")
	if !pm.Has(svc, Read) {
		t.Error("read lost")
	}
	if pm.Has(svc, Update) || pm.Has(svc, Delete) || pm.Has(svc, Insert) || pm.Has(svc, Position) {
		t.Error("privileges bleed into each other")
	}
}

func TestPermsMetadata(t *testing.T) {
	d, h := setup(t)
	p := New()
	pm, err := p.Evaluate(d, h, "laporte")
	if err != nil {
		t.Fatal(err)
	}
	if pm.User() != "laporte" {
		t.Errorf("User() = %q", pm.User())
	}
	if pm.DocVersion() != d.Version() {
		t.Error("DocVersion mismatch")
	}
	if pm.HasID("/nonexistent", Read) {
		t.Error("HasID on unknown id")
	}
}

func TestCloneIndependence(t *testing.T) {
	d, h := setup(t)
	p := New()
	if err := p.Grant(h, Read, "//service", "staff"); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if err := c.Revoke(h, Read, "//service", "staff"); err != nil {
		t.Fatal(err)
	}
	pm, err := p.Evaluate(d, h, "laporte")
	if err != nil {
		t.Fatal(err)
	}
	if !pm.Has(node(t, d, "/patients/franck/service"), Read) {
		t.Error("mutating clone changed original policy")
	}
	if c.Len() != 2 || p.Len() != 1 {
		t.Errorf("lengths: clone %d, original %d", c.Len(), p.Len())
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Effect: Deny, Privilege: Read, Path: "//diagnosis/node()", Subject: "secretary", Priority: 11}
	want := "rule(deny,read,//diagnosis/node(),secretary,11)"
	if got := r.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// TestAddKeepsStrictAscendingOrder: the >= merge in Evaluate (and the
// shared-scan merge) relies on strictly ascending priorities — out-of-order
// Adds must end up sorted, duplicates rejected.
func TestAddKeepsStrictAscendingOrder(t *testing.T) {
	_, h := setup(t)
	p := New()
	for _, prio := range []int64{30, 10, 20, 5, 25} {
		err := p.Add(h, Rule{Effect: Accept, Privilege: Read, Path: "//a", Subject: "staff", Priority: prio})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := p.verifySorted(); err != nil {
		t.Fatalf("after out-of-order Adds: %v", err)
	}
	rules := p.Rules()
	for i := 1; i < len(rules); i++ {
		if rules[i-1].Priority >= rules[i].Priority {
			t.Fatalf("rules out of order at %d: %d then %d", i, rules[i-1].Priority, rules[i].Priority)
		}
	}
	err := p.Add(h, Rule{Effect: Deny, Privilege: Read, Path: "//a", Subject: "staff", Priority: 20})
	if !errors.Is(err, ErrDuplicatePriority) {
		t.Fatalf("duplicate priority: got %v, want ErrDuplicatePriority", err)
	}
}

// TestCloneRejectsCorruptedOrder: mutating the slice Rules() exposes (which
// its contract forbids) must make Clone panic instead of propagating a
// policy whose merges silently mis-resolve conflicts.
func TestCloneRejectsCorruptedOrder(t *testing.T) {
	_, h := setup(t)
	p := New()
	for _, prio := range []int64{10, 20} {
		if err := p.Add(h, Rule{Effect: Accept, Privilege: Read, Path: "//a", Subject: "staff", Priority: prio}); err != nil {
			t.Fatal(err)
		}
	}
	p.Rules()[0].Priority = 99 // contract violation
	defer func() {
		if recover() == nil {
			t.Fatal("Clone on corrupted rule order: want panic, got none")
		}
	}()
	p.Clone()
}
