// Dynamic twin of the cowdiscipline vet pass: the static pass proves no
// code mutates a RuleCache-returned grant mask without cloning; this test
// proves the clone-on-first-write helpers actually deliver that isolation
// at runtime. Every user's Perms comes from one shared RuleCache, one
// goroutine per user hammers its Perms with Forget and Rescore while
// other goroutines keep evaluating through the same cache, and at the end
// a fresh differential Evaluate must still agree with EvaluateShared for
// every user — a leaked mutation of the shared masks would break the
// cell-for-cell oracle. Run under -race (make race) this also proves the
// cache tier is data-race free under the mixed workload.
package policy_test

import (
	"sync"
	"testing"

	"securexml/internal/policy"
)

func TestSharedMaskMutationIsolated(t *testing.T) {
	for _, kind := range ssKinds {
		t.Run(kind, func(t *testing.T) {
			d, h, p := ssEnv(t, 1, kind)
			cache := policy.NewRuleCache()
			users := h.Users()

			// Warm the shared cache and keep each user's Perms handle.
			perms := make(map[string]*policy.Perms, len(users))
			for _, u := range users {
				pm, err := p.EvaluateShared(d, h, u, cache)
				if err != nil {
					t.Fatalf("warm evaluate(%s): %v", u, err)
				}
				perms[u] = pm
			}
			ids := make([]string, 0, 16)
			nodes := d.Nodes()
			for _, n := range nodes {
				ids = append(ids, n.ID().String())
			}

			// Mutate every user's Perms through the clone-on-first-write
			// helpers while other sessions evaluate through the same cache.
			var wg sync.WaitGroup
			errs := make(chan error, 2*len(users))
			for _, u := range users {
				pm := perms[u]
				wg.Add(2)
				go func(u string, pm *policy.Perms) {
					defer wg.Done()
					if ne, ok := p.NodeEvaluator(h, u); ok {
						for _, n := range nodes {
							if err := ne.Rescore(pm, n); err != nil {
								errs <- err
								return
							}
						}
					}
					pm.Forget(ids...)
				}(u, pm)
				go func(u string) {
					defer wg.Done()
					if _, err := p.EvaluateShared(d, h, u, cache); err != nil {
						errs <- err
					}
				}(u)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Differential oracle: the shared cache must still serve every
			// user the reference permissions — no Forget or Rescore above may
			// have written through to the shared masks.
			for _, u := range users {
				ref, err := p.Evaluate(d, h, u)
				if err != nil {
					t.Fatalf("reference evaluate(%s): %v", u, err)
				}
				got, err := p.EvaluateShared(d, h, u, cache)
				if err != nil {
					t.Fatalf("shared evaluate(%s): %v", u, err)
				}
				if diff := permsDiff(d, ref, got); diff != "" {
					t.Errorf("user %s after concurrent mask mutation: %s", u, diff)
				}
			}
		})
	}
}
