// Package policy implements the security policy of §4.3: rules of the form
// rule(accept|deny, privilege, path, subject, priority) and the conflict
// resolution of axiom 14, which derives the actual privileges perm(s, n, r)
// held by each subject on each node.
//
// Priorities are the timestamps of rule insertion: "the last issued command
// has the priority over the previous ones and possibly cancels them". An
// accept at time t grants unless an applicable deny exists strictly later
// (t' > t); symmetrically a deny is overridden by a strictly later accept.
// With no applicable accept at all, the privilege is denied (closed world).
package policy

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"securexml/internal/obs"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

// Telemetry: every perm(s, n, r) lookup is one access-control decision
// (axiom 14); the counters split allow/deny per privilege. Handles are
// resolved once so the hot path (two map hits per node during view
// materialization) stays a single atomic increment.
var (
	evalStage       = obs.Stage("policy_evaluate")
	ruleEvals       = obs.Default().Counter("xmlsec_policy_rule_evals_total")
	decisionCounter = func() (d [numPrivileges][2]*obs.Counter) {
		for _, p := range Privileges {
			d[p][0] = obs.Default().Counter("xmlsec_policy_decisions_total",
				"privilege", p.MetricLabel(), "effect", "deny")
			d[p][1] = obs.Default().Counter("xmlsec_policy_decisions_total",
				"privilege", p.MetricLabel(), "effect", "allow")
		}
		return
	}()
)

// countDecision records one allow/deny decision for priv.
func countDecision(priv Privilege, allowed bool) {
	if priv < 0 || priv >= numPrivileges {
		return
	}
	if allowed {
		decisionCounter[priv][1].Inc()
	} else {
		decisionCounter[priv][0].Inc()
	}
}

// Privilege is one of the five privileges of §4.3.
type Privilege int

// The privileges. Position reveals a node's existence (RESTRICTED label);
// Read reveals existence and label; Insert allows adding a subtree under a
// node; Update allows changing a node's label; Delete allows removing the
// subtree rooted at a node.
const (
	Position Privilege = iota
	Read
	Insert
	Update
	Delete
	numPrivileges
)

// Privileges lists all privileges in declaration order.
var Privileges = []Privilege{Position, Read, Insert, Update, Delete}

// String returns the paper's name for the privilege.
func (p Privilege) String() string {
	switch p {
	case Position:
		return "position"
	case Read:
		return "read"
	case Insert:
		return "insert"
	case Update:
		return "update"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("privilege(%d)", int(p))
	}
}

// MetricLabel returns the privilege's telemetry label. Unlike String,
// every branch (including the default) returns a literal, so labels built
// from privileges stay compile-time bounded — the property xmlsec-vet's
// obslabel pass enforces.
func (p Privilege) MetricLabel() string {
	switch p {
	case Position:
		return "position"
	case Read:
		return "read"
	case Insert:
		return "insert"
	case Update:
		return "update"
	case Delete:
		return "delete"
	default:
		return "unknown"
	}
}

// ParsePrivilege parses a privilege name.
func ParsePrivilege(s string) (Privilege, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "position":
		return Position, nil
	case "read":
		return Read, nil
	case "insert":
		return Insert, nil
	case "update":
		return Update, nil
	case "delete":
		return Delete, nil
	default:
		return 0, fmt.Errorf("policy: unknown privilege %q", s)
	}
}

// Effect says whether a rule grants or denies.
type Effect int

// Rule effects.
const (
	Accept Effect = iota
	Deny
)

// String returns "accept" or "deny".
func (e Effect) String() string {
	if e == Deny {
		return "deny"
	}
	return "accept"
}

// Rule is one security rule: subject is granted/denied privilege on the
// nodes addressed by path, with the given priority.
type Rule struct {
	Effect    Effect
	Privilege Privilege
	Path      string
	Subject   string
	Priority  int64

	compiled *xpath.Compiled
	// matcher is the chain-only per-node form of the path (nil when the
	// path falls outside the xpath.NodeMatcher fragment) and usesUser
	// records whether the path references $USER. Both are derived once at
	// Add time; EvaluateShared partitions rules on them — $USER-independent
	// rules select the same node set for every user, so their sets can be
	// cached across sessions, and matcher-capable rules can share one
	// document walk through an xpath.Bank.
	matcher  *xpath.NodeMatcher
	usesUser bool
}

// String renders the rule in the paper's notation.
func (r *Rule) String() string {
	return fmt.Sprintf("rule(%s,%s,%s,%s,%d)", r.Effect, r.Privilege, r.Path, r.Subject, r.Priority)
}

// Errors returned by policy operations.
var (
	ErrUnknownSubject    = errors.New("policy: rule subject not in the hierarchy")
	ErrDuplicatePriority = errors.New("policy: priority already used (the model assumes a total order)")
)

// Policy is an ordered set of rules protecting one database.
type Policy struct {
	rules []*Rule // sorted by ascending priority
	next  int64   // next auto-assigned priority
}

// New returns an empty policy. With no rules every privilege is denied.
func New() *Policy { return &Policy{next: 1} }

// Add inserts a rule with an explicit priority. Subjects are checked against
// h so that rules cannot name unknown subjects. Paths are compiled eagerly
// so syntax errors surface at administration time, as a database would.
func (p *Policy) Add(h *subject.Hierarchy, r Rule) error {
	if !h.Exists(r.Subject) {
		return fmt.Errorf("%w: %q", ErrUnknownSubject, r.Subject)
	}
	if r.Privilege < 0 || r.Privilege >= numPrivileges {
		return fmt.Errorf("policy: invalid privilege %d", int(r.Privilege))
	}
	if r.Priority <= 0 {
		return fmt.Errorf("policy: priority must be positive (timestamps), got %d", r.Priority)
	}
	c, err := xpath.Compile(r.Path)
	if err != nil {
		return fmt.Errorf("policy: rule path: %w", err)
	}
	for _, existing := range p.rules {
		if existing.Priority == r.Priority {
			return fmt.Errorf("%w: %d", ErrDuplicatePriority, r.Priority)
		}
	}
	r.compiled = c
	r.matcher, _ = c.NodeMatcher()
	r.usesUser = c.UsesVariable("USER")
	p.rules = append(p.rules, &r)
	sort.SliceStable(p.rules, func(i, j int) bool { return p.rules[i].Priority < p.rules[j].Priority })
	if err := p.verifySorted(); err != nil {
		return err
	}
	if r.Priority >= p.next {
		p.next = r.Priority + 1
	}
	return nil
}

// verifySorted checks the strictly-ascending priority invariant that the
// axiom-14 merges (Evaluate's and EvaluateShared's latest-wins scans) rely
// on. Add establishes it by sorting after every insertion and rejecting
// duplicate priorities; verifySorted asserts it so any future mutation path
// fails loudly instead of silently mis-resolving conflicts.
func (p *Policy) verifySorted() error {
	for i := 1; i < len(p.rules); i++ {
		if p.rules[i-1].Priority >= p.rules[i].Priority {
			return fmt.Errorf("policy: rules not in strictly ascending priority order (%d then %d)",
				p.rules[i-1].Priority, p.rules[i].Priority)
		}
	}
	return nil
}

// Grant appends an accept rule with the next priority (the "last issued
// command wins" discipline of §4.3).
func (p *Policy) Grant(h *subject.Hierarchy, priv Privilege, path, subj string) error {
	return p.Add(h, Rule{Effect: Accept, Privilege: priv, Path: path, Subject: subj, Priority: p.next})
}

// Revoke appends a deny rule with the next priority.
func (p *Policy) Revoke(h *subject.Hierarchy, priv Privilege, path, subj string) error {
	return p.Add(h, Rule{Effect: Deny, Privilege: priv, Path: path, Subject: subj, Priority: p.next})
}

// Rules returns the rules in ascending priority order. The returned slice
// must not be modified.
func (p *Policy) Rules() []*Rule { return p.rules }

// Len returns the number of rules.
func (p *Policy) Len() int { return len(p.rules) }

// Clone returns an independent copy of the policy. It panics if the rule
// slice has lost its ascending-priority order — only possible by mutating
// the slice Rules() exposes, which its contract forbids.
func (p *Policy) Clone() *Policy {
	if err := p.verifySorted(); err != nil {
		panic(err.Error() + " (the slice returned by Rules() must not be modified)")
	}
	c := &Policy{next: p.next, rules: make([]*Rule, len(p.rules))}
	for i, r := range p.rules {
		cp := *r
		c.rules[i] = &cp
	}
	return c
}

// Perms is the materialized perm(s, n, r) relation for one user on one
// document snapshot (axiom 14).
type Perms struct {
	user    string
	version uint64
	// grants[nodeID] is a bitmask over privileges. When shared is set the
	// map belongs to a RuleCache and is read by other sessions — callers
	// must clone before mutating; mutators go through mutable() to get a
	// private copy first. overlay holds this user's divergences from the
	// shared map ($USER-dependent rules): a present entry wins over
	// grants, with 0 meaning no access.
	grants  map[string]uint8
	overlay map[string]uint8
	shared  bool
}

// User returns the subject the permissions were computed for.
func (pm *Perms) User() string { return pm.user }

// DocVersion returns the document version the permissions were computed
// against; higher layers use it for cache invalidation.
func (pm *Perms) DocVersion() uint64 { return pm.version }

// Has reports perm(user, n, priv).
func (pm *Perms) Has(n *xmltree.Node, priv Privilege) bool {
	return pm.HasID(n.ID().String(), priv)
}

// Clone returns a private deep copy of the permission relation, with any
// shared RuleCache map and $USER overlay flattened into an owned grants
// map. The copy is safe to hand to the incremental maintainer (whose
// Rescore/Forget mutate in place) while other readers keep using the
// original — the copy-on-write session caches patch a Clone and swap it in
// rather than mutating a published Perms.
func (pm *Perms) Clone() *Perms {
	c := &Perms{user: pm.user, version: pm.version}
	c.grants = make(map[string]uint8, len(pm.grants))
	for id, mask := range pm.grants {
		c.grants[id] = mask
	}
	for id, mask := range pm.overlay {
		if mask == 0 {
			delete(c.grants, id)
		} else {
			c.grants[id] = mask
		}
	}
	return c
}

// HasID reports perm(user, id, priv) by node identifier.
func (pm *Perms) HasID(id string, priv Privilege) bool {
	mask, inOverlay := pm.overlay[id]
	if !inOverlay {
		mask = pm.grants[id]
	}
	ok := mask&(1<<uint(priv)) != 0
	countDecision(priv, ok)
	return ok
}

// Evaluate computes the perm relation for user on doc, per axiom 14:
//
//	perm(s, n, r) holds iff some accept rule (r, p, s', t) with isa(s, s')
//	addresses n, and no deny rule (r, p', s'', t') with isa(s, s'') and
//	t' > t addresses n.
//
// Equivalently: among the applicable rules addressing n for privilege r, the
// one with the greatest priority is an accept. Rule paths are evaluated on
// the source document with $USER bound to the user's login.
func (p *Policy) Evaluate(doc *xmltree.Document, h *subject.Hierarchy, user string) (*Perms, error) {
	return p.EvaluateCtx(context.Background(), doc, h, user)
}

// EvaluateCtx is Evaluate with request-scoped tracing: under an active
// trace it records a policy_evaluate span annotated with the applicable
// rule and granted node counts.
func (p *Policy) EvaluateCtx(ctx context.Context, doc *xmltree.Document, h *subject.Hierarchy, user string) (*Perms, error) {
	_, sp := obs.StartSpanCtx(ctx, "policy_evaluate", evalStage)
	defer sp.End()
	applicable := 0
	pm := &Perms{user: user, version: doc.Version(), grants: make(map[string]uint8)}
	// latest[nodeID][priv] = priority of the latest applicable rule; sign
	// tracked separately via accepts bitmask updates below.
	type cell struct {
		priority int64
		effect   Effect
	}
	latest := make(map[string]*[numPrivileges]cell)
	vars := xpath.Vars{"USER": xpath.String(user)}
	// Strictly ascending priority (Add's verifySorted invariant): later
	// rules overwrite, so the >= below can never see an equal priority.
	for _, r := range p.rules {
		if !h.ISA(user, r.Subject) {
			continue
		}
		applicable++
		ns, err := r.compiled.Select(doc.Root(), vars)
		ruleEvals.Inc()
		if err != nil {
			return nil, fmt.Errorf("policy: evaluating %s: %w", r, err)
		}
		for _, n := range ns {
			id := n.ID().String()
			c := latest[id]
			if c == nil {
				c = &[numPrivileges]cell{}
				latest[id] = c
			}
			if r.Priority >= c[r.Privilege].priority {
				c[r.Privilege] = cell{priority: r.Priority, effect: r.Effect}
			}
		}
	}
	for id, cells := range latest {
		var mask uint8
		for _, priv := range Privileges {
			if cells[priv].priority > 0 && cells[priv].effect == Accept {
				mask |= 1 << uint(priv)
			}
		}
		if mask != 0 {
			pm.grants[id] = mask
		}
	}
	sp.AnnotateInt("rules_applicable", int64(applicable))
	sp.AnnotateInt("nodes_granted", int64(len(pm.grants)))
	return pm, nil
}

// PaperPolicy builds the twelve-rule hospital policy of axiom 13, with the
// paper's priorities 10–21.
//
// Two notational translations from the paper's abbreviated paths to strict
// XPath 1.0 (see DESIGN.md):
//
//   - the paper writes '*' where it means "any child node" — strict XPath
//     matches elements only with '*', which would hide text content even
//     from doctors — so '*' becomes node() where text nodes are intended
//     (rules 1–3, 11, 12);
//   - rule 5's "/patients/descendant-or-self::*[$USER]" (a patient sees the
//     subtree of the element named after them) is spelled out as
//     "/patients/*[name() = $USER]/descendant-or-self::node()".
func PaperPolicy(h *subject.Hierarchy) (*Policy, error) {
	p := New()
	rule := func(e Effect, r Privilege, path, subj string, prio int64) Rule {
		return Rule{Effect: e, Privilege: r, Path: path, Subject: subj, Priority: prio}
	}
	rules := []Rule{
		rule(Accept, Read, "/descendant-or-self::node()", "staff", 10),
		rule(Deny, Read, "//diagnosis/node()", "secretary", 11),
		rule(Accept, Position, "//diagnosis/node()", "secretary", 12),
		rule(Accept, Read, "/patients", "patient", 13),
		rule(Accept, Read, "/patients/*[name() = $USER]/descendant-or-self::node()", "patient", 14),
		rule(Deny, Read, "/patients/*", "epidemiologist", 15),
		rule(Accept, Position, "/patients/*", "epidemiologist", 16),
		rule(Accept, Insert, "/patients", "secretary", 17),
		rule(Accept, Update, "/patients/*", "secretary", 18),
		rule(Accept, Insert, "//diagnosis", "doctor", 19),
		rule(Accept, Update, "//diagnosis/node()", "doctor", 20),
		rule(Accept, Delete, "//diagnosis/node()", "doctor", 21),
	}
	for _, r := range rules {
		if err := p.Add(h, r); err != nil {
			return nil, err
		}
	}
	return p, nil
}
