// Shared-scan policy evaluation: the cold path of axiom 14 computed with
// as little repeated work as possible across rules, users and sessions.
//
// Evaluate (policy.go) is the reference implementation: one full-document
// XPath evaluation per applicable rule, per user — O(users × rules ×
// nodes) with nothing shared. EvaluateShared keeps its semantics (the
// differential oracle in sharedscan_test.go pins them cell-for-cell) while
// removing the repetition on three axes:
//
//   - across rules: when enough rules compile to the chain-only
//     xpath.NodeMatcher fragment, all of them are evaluated in one
//     xpath.Bank walk — a single document traversal advances every rule's
//     NFA together (YFilter-style multi-query evaluation). Rules outside
//     the fragment, or too few to amortize a full walk, run a per-rule
//     Select.
//   - across users: rules whose paths do not reference $USER select the
//     same node set for every user, so their node sets are computed once
//     per (document snapshot, policy) and cached in a RuleCache shared by
//     every session.
//   - across roles: two users with the same applicable $USER-independent
//     rule set (same roles) get identical merge results, so the cache also
//     keeps the merged permission state per rule-set profile — a second
//     secretary clones the first one's result instead of re-running the
//     priority merge.
//
// Inside the cache, nodes are dense document-order indices, so the merge
// is array arithmetic; node-ID strings appear only in the final grants
// projection (the Perms API is string-keyed). The priority merge is
// identical to Evaluate's latest-wins scan and relies on the same
// strictly-ascending rule order that Policy.Add enforces.
package policy

import (
	"context"
	"fmt"
	"maps"
	"strconv"
	"sync"

	"securexml/internal/obs"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

// Telemetry: how many rule evaluations went through the shared bank walk
// vs the per-rule fallback, and how often a user's cold evaluation was
// served $USER-independent work from the shared cache instead of
// recomputing it.
var (
	evalSharedStage = obs.Stage("policy_evaluate_shared")
	bankRuleCount   = obs.Default().Counter("xmlsec_policy_sharedscan_bank_rules_total")
	fallbackRules   = obs.Default().Counter("xmlsec_policy_sharedscan_fallback_rules_total")
	ruleCacheHits   = obs.Default().Counter("xmlsec_policy_rulecache_hits_total")
	ruleCacheMisses = obs.Default().Counter("xmlsec_policy_rulecache_misses_total")
)

// bankMinRules is the break-even point for the shared walk: a Bank always
// traverses the whole document, while Select follows the path's axes and
// touches only the relevant subtrees — so banking one or two rules loses
// to running their Selects directly.
const bankMinRules = 3

// permCell is one privilege's current winner during the axiom-14 merge:
// the highest applicable priority seen so far and its effect.
type permCell struct {
	priority int64
	effect   Effect
}

// permCells is the full per-node merge state.
type permCells [numPrivileges]permCell

// RuleCache holds the shareable parts of cold evaluation for one policy
// over one document snapshot: the dense node index, the node set of every
// $USER-independent rule evaluated so far, and the merged permission
// state per rule-set profile (one profile per distinct set of applicable
// $USER-independent rules — in practice, one per role combination).
// Callers key a cache instance by (document generation, document version,
// policy epoch) and hand out a fresh cache when any of them moves; the
// cache also remembers which (policy, document, version) filled it and
// silently resets on mismatch, so a stale hand-off degrades to a
// recompute instead of wrong permissions.
//
// A RuleCache is safe for concurrent use. The first evaluation fills each
// piece under the cache lock — concurrent cold users block until the fill
// completes and then share the result, so N simultaneous cold starts cost
// one document scan, not N.
type RuleCache struct {
	mu      sync.Mutex
	policy  *Policy
	doc     *xmltree.Document
	version uint64

	// Dense snapshot index, guarded by mu: nodes in document order, their
	// ID strings, and the reverse pointer→index map used to intern rule
	// node sets.
	nodes []*xmltree.Node
	ids   []string
	index map[*xmltree.Node]int32

	// sets holds each $USER-independent rule's dense node set, guarded by
	// mu like the rest of the cache state below.
	sets map[*Rule][]int32
	// grants holds, per profile, the final grant masks of users whose
	// applicable rules are all $USER-independent; latest holds the dense
	// pre-projection merge state for profiles that $USER-dependent rules
	// still need to be merged over.
	grants map[string]map[string]uint8
	latest map[string][]permCells
}

// NewRuleCache returns an empty cache.
func NewRuleCache() *RuleCache { return &RuleCache{} }

// ensure resets the cache when it was filled for a different policy,
// document or version, and (re)builds the dense node index. Callers hold
// c.mu.
func (c *RuleCache) ensure(p *Policy, doc *xmltree.Document) {
	if c.policy == p && c.doc == doc && c.version == doc.Version() {
		return
	}
	c.policy, c.doc, c.version = p, doc, doc.Version()
	c.nodes = doc.Nodes()
	c.ids = make([]string, len(c.nodes))
	c.index = make(map[*xmltree.Node]int32, len(c.nodes))
	for i, n := range c.nodes {
		c.ids[i] = n.ID().String()
		c.index[n] = int32(i)
	}
	c.sets = make(map[*Rule][]int32)
	c.grants = make(map[string]map[string]uint8)
	c.latest = make(map[string][]permCells)
}

// intern converts a node set to dense indices. Callers hold c.mu.
func (c *RuleCache) intern(ns []*xmltree.Node) []int32 {
	out := make([]int32, len(ns))
	for i, n := range ns {
		out[i] = c.index[n]
	}
	return out
}

// fill returns the dense node sets of the given $USER-independent rules,
// computing only the ones no earlier evaluation has cached yet — a
// homogeneous fleet (say, thousands of patients) never pays for staff
// rules it will not merge. Missing rules are still computed together, so
// the chain-only ones share one bank walk. The returned map is the live
// cache — callers must clone before mutating. Callers hold c.mu.
func (c *RuleCache) fill(ctx context.Context, p *Policy, doc *xmltree.Document, indep []*Rule) (map[*Rule][]int32, error) {
	var missing []*Rule
	for _, r := range indep {
		if _, ok := c.sets[r]; !ok {
			missing = append(missing, r)
		}
	}
	ruleCacheHits.Add(uint64(len(indep) - len(missing)))
	obs.AnnotateIntCtx(ctx, "rulecache_hit_rules", int64(len(indep)-len(missing)))
	if len(missing) == 0 {
		return c.sets, nil
	}
	ruleCacheMisses.Add(uint64(len(missing)))
	fctx, fsp := obs.StartSpanCtx(ctx, "rulecache_fill", nil)
	fsp.AnnotateInt("rules", int64(len(missing)))
	sets, err := scanSets(fctx, missing, doc, nil)
	fsp.End()
	if err != nil {
		return nil, err
	}
	for r, ns := range sets {
		c.sets[r] = c.intern(ns)
	}
	return c.sets, nil
}

// latestFor returns the dense merged permission state of a profile (an
// ascending list of applicable $USER-independent rules), computing and
// caching it on first use. The returned slice is shared — callers must
// clone before mutating. Callers hold c.mu.
func (c *RuleCache) latestFor(ctx context.Context, p *Policy, doc *xmltree.Document, sig string, indep []*Rule) ([]permCells, error) {
	if m, ok := c.latest[sig]; ok {
		ruleCacheHits.Add(uint64(len(indep)))
		obs.AnnotateCtx(ctx, "profile_latest", "hit")
		return m, nil
	}
	obs.AnnotateCtx(ctx, "profile_latest", "miss")
	sets, err := c.fill(ctx, p, doc, indep)
	if err != nil {
		return nil, err
	}
	m := make([]permCells, len(c.nodes))
	for _, r := range indep { // ascending priority: later rules overwrite
		for _, idx := range sets[r] {
			if cell := &m[idx][r.Privilege]; r.Priority >= cell.priority {
				*cell = permCell{priority: r.Priority, effect: r.Effect}
			}
		}
	}
	c.latest[sig] = m
	return m, nil
}

// grantsFor returns the final grant masks of an all-independent profile,
// projecting and caching them on first use. The returned map is shared —
// callers must clone. Callers hold c.mu.
func (c *RuleCache) grantsFor(ctx context.Context, p *Policy, doc *xmltree.Document, sig string, indep []*Rule) (map[string]uint8, error) {
	if g, ok := c.grants[sig]; ok {
		ruleCacheHits.Add(uint64(len(indep)))
		obs.AnnotateCtx(ctx, "profile_grants", "hit")
		return g, nil
	}
	obs.AnnotateCtx(ctx, "profile_grants", "miss")
	latest, err := c.latestFor(ctx, p, doc, sig, indep)
	if err != nil {
		return nil, err
	}
	g := c.projectGrants(latest)
	c.grants[sig] = g
	return g, nil
}

// mask collapses one node's merge state into its grant bitmask: per
// privilege, the winning effect, kept only when it accepts (closed world).
func (cs *permCells) mask() uint8 {
	var mask uint8
	for _, priv := range Privileges {
		if cs[priv].priority > 0 && cs[priv].effect == Accept {
			mask |= 1 << uint(priv)
		}
	}
	return mask
}

// projectGrants collapses dense merge state into the grant-mask form Perms
// serves, keeping only nodes with at least one accepted privilege.
// Callers hold c.mu.
func (c *RuleCache) projectGrants(latest []permCells) map[string]uint8 {
	g := make(map[string]uint8, len(latest))
	for idx := range latest {
		if mask := latest[idx].mask(); mask != 0 {
			g[c.ids[idx]] = mask
		}
	}
	return g
}

// mutable gives pm a private grants map if the current one is shared with
// a RuleCache (and, through it, other sessions). Evaluation hands the
// cached map out directly — most permission objects are only ever read —
// and the incremental-maintenance mutators (Rescore, Forget) call this
// before their first write, flattening any $USER overlay into the copy.
func (pm *Perms) mutable() {
	if !pm.shared {
		return
	}
	g := maps.Clone(pm.grants)
	for id, mask := range pm.overlay {
		if mask == 0 {
			delete(g, id)
		} else {
			g[id] = mask
		}
	}
	pm.grants, pm.overlay, pm.shared = g, nil, false
}

// EvaluateShared computes the same perm relation as Evaluate — the
// differential oracle keeps them interchangeable — through the shared-scan
// pipeline: cached $USER-independent rule sets and per-profile merges
// (computed in one bank walk and one merge for the first user of a role
// combination), a per-user scan of only the $USER-dependent rules, then
// the axiom-14 latest-wins merge of the dependent sets over a clone of
// the cached state.
//
// cache may be nil, in which case nothing is reused across calls but rules
// still share document walks within this call.
func (p *Policy) EvaluateShared(doc *xmltree.Document, h *subject.Hierarchy, user string, cache *RuleCache) (*Perms, error) {
	return p.EvaluateSharedCtx(context.Background(), doc, h, user, cache)
}

// EvaluateSharedCtx is EvaluateShared with request-scoped tracing: under
// an active trace it records a policy_evaluate_shared span with child
// spans for the bank walk / per-rule fallback and the RuleCache fill, and
// annotations for profile hit/miss and the $USER overlay size.
func (p *Policy) EvaluateSharedCtx(ctx context.Context, doc *xmltree.Document, h *subject.Hierarchy, user string, cache *RuleCache) (*Perms, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "policy_evaluate_shared", evalSharedStage)
	defer sp.End()
	pm := &Perms{user: user, version: doc.Version()}
	var indep, dep []*Rule
	sig := make([]byte, 0, 64)
	for i, r := range p.rules {
		if !h.ISA(user, r.Subject) {
			continue
		}
		if r.usesUser {
			dep = append(dep, r)
		} else {
			indep = append(indep, r)
			sig = strconv.AppendInt(sig, int64(i), 10)
			sig = append(sig, ',')
		}
	}
	sp.AnnotateInt("rules_indep", int64(len(indep)))
	sp.AnnotateInt("rules_dep", int64(len(dep)))
	// $USER-dependent sets are per-user work; scan them outside the cache
	// lock so concurrent warm-ups only serialize on genuinely shared state.
	depSets, err := scanSets(ctx, dep, doc, xpath.Vars{"USER": xpath.String(user)})
	if err != nil {
		return nil, err
	}
	if cache == nil {
		cache = NewRuleCache()
	}
	cache.mu.Lock()
	cache.ensure(p, doc)
	if len(dep) == 0 {
		g, err := cache.grantsFor(ctx, p, doc, string(sig), indep)
		cache.mu.Unlock()
		if err != nil {
			return nil, err
		}
		// Hand the cached map out directly; mutators copy-on-write.
		pm.grants, pm.shared = g, true
		return pm, nil
	}
	// A $USER-dependent user starts from the cached state of its
	// $USER-independent profile and patches only the nodes its dependent
	// rules touch — typically a handful (the user's own subtree) out of
	// the whole document.
	base, err := cache.latestFor(ctx, p, doc, string(sig), indep)
	if err != nil {
		cache.mu.Unlock()
		return nil, err
	}
	g, err := cache.grantsFor(ctx, p, doc, string(sig), indep)
	if err != nil {
		cache.mu.Unlock()
		return nil, err
	}
	ids := cache.ids
	depIdx := make(map[*Rule][]int32, len(dep))
	for r, ns := range depSets {
		depIdx[r] = cache.intern(ns)
	}
	cache.mu.Unlock()
	// base, g and ids are shared snapshots: read-only from here on.
	touched := make(map[int32]permCells)
	for _, r := range dep { // ascending priority, same merge as Evaluate
		for _, idx := range depIdx[r] {
			cells, ok := touched[idx]
			if !ok {
				cells = base[idx]
			}
			if cell := &cells[r.Privilege]; r.Priority >= cell.priority {
				*cell = permCell{priority: r.Priority, effect: r.Effect}
			}
			touched[idx] = cells
		}
	}
	overlay := make(map[string]uint8, len(touched))
	for idx, cells := range touched {
		overlay[ids[idx]] = cells.mask()
	}
	sp.AnnotateInt("overlay_nodes", int64(len(overlay)))
	pm.grants, pm.overlay, pm.shared = g, overlay, true
	return pm, nil
}

// scanSets evaluates the given rules' node sets in as few document
// traversals as possible: chain-only rules share one Bank walk when there
// are at least bankMinRules of them, everything else runs a per-rule
// Select.
func scanSets(ctx context.Context, rules []*Rule, doc *xmltree.Document, vars xpath.Vars) (map[*Rule][]*xmltree.Node, error) {
	out := make(map[*Rule][]*xmltree.Node, len(rules))
	var banked []*Rule
	for _, r := range rules {
		if r.matcher != nil {
			banked = append(banked, r)
		}
	}
	if len(banked) < bankMinRules {
		banked = nil
	}
	var ms []*xpath.NodeMatcher
	for _, r := range banked {
		ms = append(ms, r.matcher)
	}
	if nFall := len(rules) - len(banked); nFall > 0 {
		_, fsp := obs.StartSpanCtx(ctx, "policy_rule_select", nil)
		fsp.AnnotateInt("rules", int64(nFall))
		for _, r := range rules {
			if len(banked) > 0 && r.matcher != nil {
				continue
			}
			fallbackRules.Inc()
			ruleEvals.Inc()
			ns, err := r.compiled.Select(doc.Root(), vars)
			if err != nil {
				fsp.End()
				return nil, fmt.Errorf("policy: evaluating %s: %w", r, err)
			}
			out[r] = ns
		}
		fsp.End()
	}
	if len(ms) > 0 {
		_, bsp := obs.StartSpanCtx(ctx, "policy_bank_walk", nil)
		bsp.AnnotateInt("rules", int64(len(banked)))
		sets, err := xpath.NewBank(ms).Select(doc, vars)
		bsp.End()
		if err != nil {
			return nil, fmt.Errorf("policy: shared scan: %w", err)
		}
		for i, r := range banked {
			bankRuleCount.Inc()
			ruleEvals.Inc()
			out[r] = sets[i]
		}
	}
	return out, nil
}
