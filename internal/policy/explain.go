// Decision provenance (the "explain" layer): re-deriving the axiom-14
// story behind perm(s, n, r) for individual nodes, on demand. Where
// Evaluate collapses the rule merge into a bitmask, Explain keeps the
// intermediate facts — which applicable rules addressed the node, which
// one won the priority order, and what it defeated — so a surprising
// grant or denial can be traced back to a concrete rule. Explain is a
// diagnostic path: it re-runs every applicable rule's select, costs a
// cold evaluation each call, and must never sit on the hot path.
package policy

import (
	"fmt"

	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

// RuleTrace is one policy rule's role in a node's axiom-14 story.
type RuleTrace struct {
	// Index is the rule's position in the policy's ascending priority
	// order.
	Index    int    `json:"index"`
	Rule     string `json:"rule"` // paper notation: rule(effect,priv,path,subject,prio)
	Effect   string `json:"effect"`
	Priority int64  `json:"priority"`
	// Outcome is "wins" for the latest (highest-priority) rule addressing
	// the node, "defeated" for every earlier one it overrode.
	Outcome string `json:"outcome"`
}

// PrivilegeStory is the axiom-14 conflict resolution for one privilege on
// one node: every applicable rule addressing the node in priority order,
// the winner last. With no addressing rule the privilege is denied by the
// closed-world default and Winner is nil.
type PrivilegeStory struct {
	Privilege string      `json:"privilege"`
	Granted   bool        `json:"granted"`
	Winner    *RuleTrace  `json:"winner,omitempty"`
	Defeated  []RuleTrace `json:"defeated,omitempty"`
}

// NodeStory is the full per-privilege story of one node.
type NodeStory struct {
	NodeID string `json:"node_id"`
	Path   string `json:"path"`
	Label  string `json:"label"`
	Kind   string `json:"kind"`
	// Privileges holds one story per privilege, in declaration order
	// (position, read, insert, update, delete).
	Privileges []PrivilegeStory `json:"privileges"`
}

// Explain re-derives the axiom-14 merge for the given source-document
// nodes, keeping the provenance Evaluate discards. It returns one story
// per node (same order) plus the number of applicable rules. The rule
// selects run with $USER bound to user, exactly like Evaluate.
func (p *Policy) Explain(doc *xmltree.Document, h *subject.Hierarchy, user string, nodes []*xmltree.Node) ([]NodeStory, int, error) {
	vars := xpath.Vars{"USER": xpath.String(user)}
	type appRule struct {
		index int
		rule  *Rule
		set   map[string]bool
	}
	var applicable []appRule
	for i, r := range p.rules {
		if !h.ISA(user, r.Subject) {
			continue
		}
		ns, err := r.compiled.Select(doc.Root(), vars)
		if err != nil {
			return nil, 0, fmt.Errorf("policy: explaining %s: %w", r, err)
		}
		set := make(map[string]bool, len(ns))
		for _, n := range ns {
			set[n.ID().String()] = true
		}
		applicable = append(applicable, appRule{index: i, rule: r, set: set})
	}
	stories := make([]NodeStory, 0, len(nodes))
	for _, n := range nodes {
		id := n.ID().String()
		st := NodeStory{
			NodeID: id, Path: n.Path(), Label: n.Label(), Kind: n.Kind().String(),
			Privileges: make([]PrivilegeStory, 0, len(Privileges)),
		}
		for _, priv := range Privileges {
			ps := PrivilegeStory{Privilege: priv.String()}
			// p.rules is strictly ascending by priority (Add's invariant),
			// so the last addressing rule is the axiom-14 winner.
			var traces []RuleTrace
			for _, ar := range applicable {
				if ar.rule.Privilege != priv || !ar.set[id] {
					continue
				}
				traces = append(traces, RuleTrace{
					Index:    ar.index,
					Rule:     ar.rule.String(),
					Effect:   ar.rule.Effect.String(),
					Priority: ar.rule.Priority,
					Outcome:  "defeated",
				})
			}
			if len(traces) > 0 {
				w := traces[len(traces)-1]
				w.Outcome = "wins"
				ps.Winner = &w
				ps.Defeated = traces[:len(traces)-1]
				ps.Granted = w.Effect == Accept.String()
			}
			st.Privileges = append(st.Privileges, ps)
		}
		stories = append(stories, st)
	}
	return stories, len(applicable), nil
}

// CellOrigin reports where the production cell for node id lives in this
// permission object: "overlay" (a $USER-dependent patch private to the
// user), "shared-profile" (the RuleCache's profile mask shared across
// every user of the same role signature), or "private" (an unshared map
// from Evaluate or a copied-on-write mutation).
func (pm *Perms) CellOrigin(id string) string {
	if _, ok := pm.overlay[id]; ok {
		return "overlay"
	}
	if pm.shared {
		return "shared-profile"
	}
	return "private"
}

// PeekID reports perm(user, id, priv) like HasID but without counting a
// decision: the explain layer reads cells for introspection, and a
// diagnostic call must not inflate the enforcement counters.
func (pm *Perms) PeekID(id string, priv Privilege) bool {
	mask, inOverlay := pm.overlay[id]
	if !inOverlay {
		mask = pm.grants[id]
	}
	return mask&(1<<uint(priv)) != 0
}
