package storage

import (
	"errors"
	"strings"
	"testing"

	"securexml/internal/labeling"
	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
)

func sample(t *testing.T, schemeName string) *Snapshot {
	t.Helper()
	scheme, err := labeling.ByName(schemeName)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.ParseString(
		`<patients><franck id="42" note="a &quot;quoted&quot; value"><service>otolaryngology</service><diagnosis>tonsillitis</diagnosis></franck><robert/></patients>`,
		xmltree.ParseOptions{Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	h := subject.PaperHierarchy()
	p, err := policy.PaperPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	rules := make([]policy.Rule, 0, p.Len())
	for _, r := range p.Rules() {
		rules = append(rules, *r)
	}
	return &Snapshot{SchemeName: schemeName, Doc: doc, Subjects: h, Rules: rules}
}

func TestRoundTrip(t *testing.T) {
	for _, schemeName := range []string{"fracpath", "lsdx"} {
		snap := sample(t, schemeName)
		var b strings.Builder
		if err := Write(&b, snap); err != nil {
			t.Fatal(err)
		}
		got, err := Read(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("%s: %v\nsnapshot:\n%s", schemeName, err, b.String())
		}
		if got.SchemeName != schemeName {
			t.Errorf("scheme = %q", got.SchemeName)
		}
		// Document identical including identifiers.
		if !xmltree.Equal(snap.Doc, got.Doc) {
			t.Errorf("%s: document not identical after round trip:\n%s\nvs\n%s",
				schemeName, snap.Doc.Sketch(), got.Doc.Sketch())
		}
		// Hierarchy identical.
		wantSub, wantISA := snap.Subjects.Facts()
		gotSub, gotISA := got.Subjects.Facts()
		if strings.Join(wantSub, ",") != strings.Join(gotSub, ",") {
			t.Errorf("subjects: %v vs %v", wantSub, gotSub)
		}
		if len(wantISA) != len(gotISA) {
			t.Errorf("isa edges: %d vs %d", len(wantISA), len(gotISA))
		}
		for _, u := range wantSub {
			k1, _ := snap.Subjects.KindOf(u)
			k2, _ := got.Subjects.KindOf(u)
			if k1 != k2 {
				t.Errorf("kind of %s changed: %v -> %v", u, k1, k2)
			}
		}
		// Rules identical.
		if len(got.Rules) != len(snap.Rules) {
			t.Fatalf("rules: %d vs %d", len(got.Rules), len(snap.Rules))
		}
		for i := range got.Rules {
			a, b := snap.Rules[i], got.Rules[i]
			if a.Effect != b.Effect || a.Privilege != b.Privilege ||
				a.Priority != b.Priority || a.Subject != b.Subject || a.Path != b.Path {
				t.Errorf("rule %d: %+v vs %+v", i, a, b)
			}
		}
	}
}

func TestRoundTripSpecialLabels(t *testing.T) {
	scheme, _ := labeling.ByName("fracpath")
	doc := xmltree.New(scheme)
	root, err := doc.AppendChild(doc.Root(), xmltree.KindElement, "r")
	if err != nil {
		t.Fatal(err)
	}
	// Labels with newlines, quotes, spaces and unicode must survive.
	for _, label := range []string{"line\nbreak", `has "quotes"`, "tab\there", "ünïcôde ✓", " leading and trailing "} {
		if _, err := doc.AppendChild(root, xmltree.KindText, label); err != nil {
			t.Fatal(err)
		}
	}
	snap := &Snapshot{SchemeName: "fracpath", Doc: doc, Subjects: subject.NewHierarchy()}
	var b strings.Builder
	if err := Write(&b, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(doc, got.Doc) {
		t.Errorf("special labels mangled:\n%s\nvs\n%s", doc.Sketch(), got.Doc.Sketch())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"bad magic", "not-a-snapshot\nend\n"},
		{"no scheme", "securexml-snapshot 1\nend\n"},
		{"bad scheme", "securexml-snapshot 1\nscheme martian\nend\n"},
		{"truncated", "securexml-snapshot 1\nscheme fracpath\n"},
		{"unknown verb", "securexml-snapshot 1\nscheme fracpath\nfrobnicate x\nend\n"},
		{"orphan node", "securexml-snapshot 1\nscheme fracpath\nnode /a0/a0 1 \"x\"\nend\n"},
		{"bad node id", "securexml-snapshot 1\nscheme fracpath\nnode ??? 1 \"x\"\nend\n"},
		{"bad node kind", "securexml-snapshot 1\nscheme fracpath\nnode /a0 banana \"x\"\nend\n"},
		{"bad label quoting", "securexml-snapshot 1\nscheme fracpath\nnode /a0 1 unquoted\nend\n"},
		{"bad subject kind", "securexml-snapshot 1\nscheme fracpath\nsubject alien bob\nend\n"},
		{"isa unknown", "securexml-snapshot 1\nscheme fracpath\nisa a b\nend\n"},
		{"bad rule effect", "securexml-snapshot 1\nscheme fracpath\nrule maybe read 1 staff \"//x\"\nend\n"},
		{"bad rule privilege", "securexml-snapshot 1\nscheme fracpath\nrule accept fly 1 staff \"//x\"\nend\n"},
		{"bad rule priority", "securexml-snapshot 1\nscheme fracpath\nrule accept read soon staff \"//x\"\nend\n"},
		{"bad rule path quoting", "securexml-snapshot 1\nscheme fracpath\nrule accept read 1 staff //x\nend\n"},
	}
	for _, tc := range cases {
		if _, err := Read(strings.NewReader(tc.text)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := Read(strings.NewReader("bogus\n")); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("errors should wrap ErrBadSnapshot, got %v", err)
	}
}

func TestSnapshotIsStableText(t *testing.T) {
	// Two writes of the same state must be byte-identical (deterministic
	// serialization makes snapshots diffable).
	snap := sample(t, "fracpath")
	var a, b strings.Builder
	if err := Write(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, snap); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("snapshot serialization not deterministic")
	}
}
