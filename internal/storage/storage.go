// Package storage persists and restores complete database snapshots: the
// document *with its persistent node identifiers*, the subject hierarchy,
// and the security policy. Plain XML export/import would be lossy — §3.1
// requires identifiers to survive forever, and rules, views, and the
// write-path all key on them — so snapshots carry the identifiers
// explicitly and restore bit-identical geometry.
//
// The format is a line-oriented text file:
//
//	securexml-snapshot 1
//	scheme fracpath
//	node <id> <kind> <label-quoted>
//	...                       (document order; parents precede children)
//	subject <role|user> <name>
//	isa <child> <parent>
//	rule <accept|deny> <privilege> <priority> <subject> <path-quoted>
//	end
//
// Labels and paths are strconv-quoted, so arbitrary content round-trips.
package storage

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"securexml/internal/labeling"
	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
)

// magic is the header line of snapshot version 1.
const magic = "securexml-snapshot 1"

// Snapshot is the full persistent state of a database.
type Snapshot struct {
	// SchemeName names the labeling scheme of the document.
	SchemeName string
	// Doc is the document; node identifiers are preserved by Write/Read.
	Doc *xmltree.Document
	// Subjects is the subject hierarchy.
	Subjects *subject.Hierarchy
	// Rules is the security policy in ascending priority order.
	Rules []policy.Rule
}

// ErrBadSnapshot is wrapped by all Read parse failures.
var ErrBadSnapshot = errors.New("storage: malformed snapshot")

// Write serializes the snapshot.
func Write(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, magic)
	fmt.Fprintf(bw, "scheme %s\n", s.SchemeName)
	var werr error
	s.Doc.Root().Walk(func(n *xmltree.Node) bool {
		if n.Kind() == xmltree.KindDocument {
			return true // implicit
		}
		_, err := fmt.Fprintf(bw, "node %s %d %s\n", n.ID(), int(n.Kind()), strconv.Quote(n.Label()))
		if err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	subjects, isa := s.Subjects.Facts()
	for _, name := range subjects {
		kind, _ := s.Subjects.KindOf(name)
		tag := "role"
		if kind == subject.User {
			tag = "user"
		}
		fmt.Fprintf(bw, "subject %s %s\n", tag, name)
	}
	for _, edge := range isa {
		fmt.Fprintf(bw, "isa %s %s\n", edge[0], edge[1])
	}
	for _, r := range s.Rules {
		fmt.Fprintf(bw, "rule %s %s %d %s %s\n",
			r.Effect, r.Privilege, r.Priority, r.Subject, strconv.Quote(r.Path))
	}
	if _, err := fmt.Fprintln(bw, "end"); err != nil {
		return err
	}
	return bw.Flush()
}

// Read parses a snapshot and reconstructs the document (with its original
// identifiers), hierarchy and rules. The returned policy rules are not yet
// bound to a hierarchy; callers re-add them via policy.Policy.Add so path
// compilation and subject checks re-run.
func Read(r io.Reader) (*Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	line := func() (string, bool) {
		for sc.Scan() {
			t := strings.TrimRight(sc.Text(), "\r")
			return t, true
		}
		return "", false
	}
	first, ok := line()
	if !ok || first != magic {
		return nil, fmt.Errorf("%w: missing %q header", ErrBadSnapshot, magic)
	}
	schemeLine, ok := line()
	if !ok || !strings.HasPrefix(schemeLine, "scheme ") {
		return nil, fmt.Errorf("%w: missing scheme line", ErrBadSnapshot)
	}
	schemeName := strings.TrimPrefix(schemeLine, "scheme ")
	scheme, err := labeling.ByName(schemeName)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	snap := &Snapshot{
		SchemeName: schemeName,
		Doc:        xmltree.New(scheme),
		Subjects:   subject.NewHierarchy(),
	}
	sawEnd := false
	for {
		l, ok := line()
		if !ok {
			break
		}
		if l == "" {
			continue
		}
		if l == "end" {
			sawEnd = true
			break
		}
		verb, rest := splitWord(l)
		switch verb {
		case "node":
			if err := readNode(snap.Doc, rest); err != nil {
				return nil, err
			}
		case "subject":
			kind, name := splitWord(rest)
			var err error
			switch kind {
			case "role":
				err = snap.Subjects.AddRole(name)
			case "user":
				err = snap.Subjects.AddUser(name)
			default:
				err = fmt.Errorf("%w: unknown subject kind %q", ErrBadSnapshot, kind)
			}
			if err != nil {
				return nil, err
			}
		case "isa":
			child, parent := splitWord(rest)
			if err := snap.Subjects.AddISA(child, parent); err != nil {
				return nil, err
			}
		case "rule":
			rule, err := readRule(rest)
			if err != nil {
				return nil, err
			}
			snap.Rules = append(snap.Rules, rule)
		default:
			return nil, fmt.Errorf("%w: unknown line %q", ErrBadSnapshot, l)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEnd {
		return nil, fmt.Errorf("%w: truncated (no end marker)", ErrBadSnapshot)
	}
	return snap, nil
}

// readNode parses "  <id> <kind> <label-quoted>" and mirrors the node under
// its parent, preserving the identifier.
func readNode(doc *xmltree.Document, rest string) error {
	idText, rest := splitWord(rest)
	kindText, quoted := splitWord(rest)
	id, err := labeling.Parse(idText)
	if err != nil {
		return fmt.Errorf("%w: node id: %v", ErrBadSnapshot, err)
	}
	kindNum, err := strconv.Atoi(kindText)
	if err != nil {
		return fmt.Errorf("%w: node kind %q", ErrBadSnapshot, kindText)
	}
	label, err := strconv.Unquote(quoted)
	if err != nil {
		return fmt.Errorf("%w: node label %q", ErrBadSnapshot, quoted)
	}
	parentID, okParent := id.Parent()
	if !okParent {
		return fmt.Errorf("%w: node %s has no parent identifier", ErrBadSnapshot, idText)
	}
	parent := doc.NodeByID(parentID)
	if parent == nil {
		return fmt.Errorf("%w: node %s arrives before its parent %s", ErrBadSnapshot, idText, parentID)
	}
	_, err = doc.MirrorChild(parent, xmltree.Kind(kindNum), label, id)
	return err
}

// readRule parses "<effect> <privilege> <priority> <subject> <path-quoted>".
func readRule(rest string) (policy.Rule, error) {
	effText, rest := splitWord(rest)
	privText, rest := splitWord(rest)
	prioText, rest := splitWord(rest)
	subj, quoted := splitWord(rest)

	var eff policy.Effect
	switch effText {
	case "accept":
		eff = policy.Accept
	case "deny":
		eff = policy.Deny
	default:
		return policy.Rule{}, fmt.Errorf("%w: rule effect %q", ErrBadSnapshot, effText)
	}
	priv, err := policy.ParsePrivilege(privText)
	if err != nil {
		return policy.Rule{}, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	prio, err := strconv.ParseInt(prioText, 10, 64)
	if err != nil {
		return policy.Rule{}, fmt.Errorf("%w: rule priority %q", ErrBadSnapshot, prioText)
	}
	path, err := strconv.Unquote(quoted)
	if err != nil {
		return policy.Rule{}, fmt.Errorf("%w: rule path %q", ErrBadSnapshot, quoted)
	}
	return policy.Rule{Effect: eff, Privilege: priv, Priority: prio, Subject: subj, Path: path}, nil
}

func splitWord(s string) (first, rest string) {
	s = strings.TrimSpace(s)
	i := strings.IndexByte(s, ' ')
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i+1:])
}
