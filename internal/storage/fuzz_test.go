package storage

import (
	"strings"
	"testing"
)

// FuzzRead checks the snapshot reader never panics on corrupt input.
func FuzzRead(f *testing.F) {
	// A valid snapshot as the main seed.
	var b strings.Builder
	seedSnap := &Snapshot{}
	_ = seedSnap
	f.Add("securexml-snapshot 1\nscheme fracpath\nnode /a0 1 \"r\"\nsubject user u\nrule accept read 1 u \"//x\"\nend\n")
	f.Add("securexml-snapshot 1\nscheme lsdx\nend\n")
	f.Add("")
	f.Add("securexml-snapshot 1\nscheme fracpath\nnode")
	f.Add("securexml-snapshot 1\nscheme fracpath\nnode /a0 1 \"r\"\nnode /a0/a0 2 \"t\"\nend\n")
	f.Add(strings.Repeat("node /a0 1 \"x\"\n", 3))
	_ = b
	f.Fuzz(func(t *testing.T, src string) {
		snap, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		// Accepted snapshots must be re-serializable.
		var out strings.Builder
		if err := Write(&out, snap); err != nil {
			t.Fatalf("accepted snapshot cannot be re-written: %v", err)
		}
	})
}
