package view

import (
	"strings"
	"testing"

	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

const medXML = `<patients><franck><service>otolaryngology</service><diagnosis>tonsillitis</diagnosis></franck><robert><service>pneumology</service><diagnosis>pneumonia</diagnosis></robert></patients>`

// hier builds a tiny hierarchy with one role and one user.
func hier(t *testing.T) *subject.Hierarchy {
	t.Helper()
	h := subject.NewHierarchy()
	if err := h.AddRole("r"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddUser("u", "r"); err != nil {
		t.Fatal(err)
	}
	return h
}

func materialize(t *testing.T, doc *xmltree.Document, h *subject.Hierarchy, p *policy.Policy, user string) *View {
	t.Helper()
	pm, err := p.Evaluate(doc, h, user)
	if err != nil {
		t.Fatal(err)
	}
	return Materialize(doc, pm)
}

func TestEmptyPolicyYieldsEmptyView(t *testing.T) {
	d, _ := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	h := hier(t)
	v := materialize(t, d, h, policy.New(), "u")
	// Axiom 15: the document node is always in the view; nothing else is.
	if v.Doc.Len() != 1 {
		t.Errorf("view has %d nodes, want only the document node:\n%s", v.Doc.Len(), v.Doc.Sketch())
	}
	if v.Hidden != d.Len()-1 {
		t.Errorf("Hidden = %d, want %d", v.Hidden, d.Len()-1)
	}
	if v.User != "u" {
		t.Errorf("User = %q", v.User)
	}
}

func TestFullReadYieldsIdenticalView(t *testing.T) {
	d, _ := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	h := hier(t)
	p := policy.New()
	if err := p.Grant(h, policy.Read, "/descendant-or-self::node()", "r"); err != nil {
		t.Fatal(err)
	}
	v := materialize(t, d, h, p, "u")
	if !xmltree.Equal(v.Doc, d) {
		t.Errorf("full-read view differs from source:\n%s\nvs\n%s", v.Doc.Sketch(), d.Sketch())
	}
	if v.Restricted != 0 || v.Hidden != 0 {
		t.Errorf("Restricted=%d Hidden=%d", v.Restricted, v.Hidden)
	}
}

func TestHiddenSubtreeDisappearsEntirely(t *testing.T) {
	// Deny on franck hides franck's whole subtree even though the user holds
	// read on the nodes below (the parent-selected condition of axiom 16).
	d, _ := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	h := hier(t)
	p := policy.New()
	if err := p.Grant(h, policy.Read, "/descendant-or-self::node()", "r"); err != nil {
		t.Fatal(err)
	}
	if err := p.Revoke(h, policy.Read, "/patients/franck", "r"); err != nil {
		t.Fatal(err)
	}
	v := materialize(t, d, h, p, "u")
	if got, _ := xpath.Select(v.Doc, "//franck", nil); len(got) != 0 {
		t.Error("franck still visible")
	}
	if got, _ := xpath.Select(v.Doc, "//service", nil); len(got) != 1 {
		t.Errorf("franck's service leaked into the view (or robert's lost): %d", len(got))
	}
	// 5 hidden nodes: franck + service + text + diagnosis + text.
	if v.Hidden != 5 {
		t.Errorf("Hidden = %d, want 5", v.Hidden)
	}
}

func TestPositionShowsRestrictedSkeleton(t *testing.T) {
	d, _ := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	h := hier(t)
	p := policy.New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(p.Grant(h, policy.Read, "/descendant-or-self::node()", "r"))
	must(p.Revoke(h, policy.Read, "/patients/franck", "r"))
	must(p.Grant(h, policy.Position, "/patients/franck", "r"))
	v := materialize(t, d, h, p, "u")
	// franck appears as RESTRICTED, structure below is preserved.
	rs, _ := xpath.Select(v.Doc, "/patients/RESTRICTED", nil)
	if len(rs) != 1 {
		t.Fatalf("no RESTRICTED element where franck was:\n%s", v.Doc.Sketch())
	}
	if got, _ := xpath.Select(v.Doc, "/patients/RESTRICTED/service/text()", nil); len(got) != 1 {
		t.Error("subtree below RESTRICTED node lost")
	}
	if v.Restricted != 1 {
		t.Errorf("Restricted = %d, want 1", v.Restricted)
	}
	// The source node keeps its identity: same id in view and source.
	src, _ := xpath.Select(d, "/patients/franck", nil)
	if !v.Visible(src[0].ID().String()) {
		t.Error("Visible(franck) = false")
	}
	if !v.IsRestricted(src[0].ID().String()) {
		t.Error("IsRestricted(franck) = false")
	}
	robertID, _ := xpath.Select(d, "/patients/robert", nil)
	if v.IsRestricted(robertID[0].ID().String()) {
		t.Error("IsRestricted(robert) = true")
	}
	if v.Visible("not-an-id") || v.IsRestricted("not-an-id") {
		t.Error("malformed ids should be invisible")
	}
}

func TestReadBeatsPositionWhenBothHeld(t *testing.T) {
	// Axiom 17 applies only without the read privilege.
	d, _ := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	h := hier(t)
	p := policy.New()
	if err := p.Grant(h, policy.Position, "/patients", "r"); err != nil {
		t.Fatal(err)
	}
	if err := p.Grant(h, policy.Read, "/patients", "r"); err != nil {
		t.Fatal(err)
	}
	v := materialize(t, d, h, p, "u")
	if got, _ := xpath.Select(v.Doc, "/patients", nil); len(got) != 1 {
		t.Fatalf("patients not visible with its label:\n%s", v.Doc.Sketch())
	}
	if v.Restricted != 0 {
		t.Error("node restricted despite read privilege")
	}
}

func TestViewKeepsIdentifiers(t *testing.T) {
	d, _ := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	h := hier(t)
	p := policy.New()
	if err := p.Grant(h, policy.Read, "/descendant-or-self::node()", "r"); err != nil {
		t.Fatal(err)
	}
	v := materialize(t, d, h, p, "u")
	for _, n := range d.Nodes() {
		vn := v.Doc.NodeByID(n.ID())
		if vn == nil {
			t.Fatalf("view lost node %s", n.ID())
		}
		if vn.Label() != n.Label() {
			t.Errorf("label of %s changed: %q -> %q", n.ID(), n.Label(), vn.Label())
		}
	}
	if v.SourceVersion != d.Version() {
		t.Error("SourceVersion mismatch")
	}
}

func TestViewWithAttributes(t *testing.T) {
	d, _ := xmltree.ParseString(`<r><e id="secret" pub="ok">text</e></r>`, xmltree.ParseOptions{})
	h := hier(t)
	p := policy.New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(p.Grant(h, policy.Read, "/descendant-or-self::node()", "r"))
	must(p.Grant(h, policy.Read, "//@*", "r"))
	must(p.Grant(h, policy.Read, "//@*/node()", "r"))
	must(p.Revoke(h, policy.Read, "//@id", "r"))
	v := materialize(t, d, h, p, "u")
	e, err := xpath.Select(v.Doc, "/r/e", nil)
	if err != nil || len(e) != 1 {
		t.Fatalf("element lost: %v", err)
	}
	if _, ok := e[0].AttrValue("id"); ok {
		t.Error("denied attribute visible in view")
	}
	if got, ok := e[0].AttrValue("pub"); !ok || got != "ok" {
		t.Errorf("granted attribute = %q, %v", got, ok)
	}
}

func TestViewSerializesWithoutIDs(t *testing.T) {
	// §4.4.1: numbers are internal only; the XML serialization of a view
	// must not leak them.
	d, _ := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	h := hier(t)
	p := policy.New()
	if err := p.Grant(h, policy.Read, "/descendant-or-self::node()", "r"); err != nil {
		t.Fatal(err)
	}
	v := materialize(t, d, h, p, "u")
	if out := v.Doc.XML(); strings.Contains(out, "sxml:id") {
		t.Error("view serialization leaks identifiers")
	}
}
