// Package view implements the read access control of §4.4.1: deriving the
// pruned document view a user is permitted to see (axioms 15–17).
//
// The view strategy:
//
//   - the document node always belongs to the view (axiom 15);
//   - a node is selected iff its parent is selected and the user holds the
//     read privilege — it keeps its label (axiom 16) — or only the position
//     privilege — it appears with the RESTRICTED label (axiom 17);
//   - nodes with neither privilege disappear together with their entire
//     subtree, even parts the user could otherwise read (the "parent must
//     be selected" condition).
//
// Selected nodes keep their persistent identifiers — views are never
// renumbered, which is also how the secured write path maps view selections
// back to source nodes (§4.4.2). The identifiers are internal only and are
// not serialized to users.
package view

import (
	"context"

	"securexml/internal/labeling"
	"securexml/internal/obs"
	"securexml/internal/policy"
	"securexml/internal/xmltree"
)

// Telemetry: materialization is the dominant cost of the read path (axioms
// 15–17), so every derivation records its duration and node accounting.
var (
	matStage      = obs.Stage("view_materialize")
	matTotal      = obs.Default().Counter("xmlsec_view_materializations_total")
	matNodes      = obs.Default().Counter("xmlsec_view_nodes_total")
	matRestricted = obs.Default().Counter("xmlsec_view_restricted_total")
	matHidden     = obs.Default().Counter("xmlsec_view_hidden_total")
)

// View is a user's authorized view of a source document.
type View struct {
	// Doc is the materialized view document. Node identifiers coincide with
	// the source document's.
	Doc *xmltree.Document
	// User is the subject the view was derived for.
	User string
	// SourceVersion is the source document version the view reflects.
	SourceVersion uint64
	// Restricted counts nodes shown with the RESTRICTED label.
	Restricted int
	// Hidden counts source nodes not shown at all.
	Hidden int
}

// Materialize derives the view of src for the user whose permissions are pm
// (axioms 15–17).
func Materialize(src *xmltree.Document, pm *policy.Perms) *View {
	return MaterializeCtx(context.Background(), src, pm)
}

// MaterializeCtx is Materialize with request-scoped tracing: under an
// active trace it records a view_materialize span annotated with the node
// accounting.
func MaterializeCtx(ctx context.Context, src *xmltree.Document, pm *policy.Perms) *View {
	_, sp := obs.StartSpanCtx(ctx, "view_materialize", matStage)
	v := &View{
		Doc:           xmltree.New(src.Scheme()),
		User:          pm.User(),
		SourceVersion: src.Version(),
	}
	copySelected(v, pm, src.Root(), v.Doc.Root())
	sp.AnnotateInt("nodes", int64(v.Doc.Len()))
	sp.AnnotateInt("restricted", int64(v.Restricted))
	sp.AnnotateInt("hidden", int64(v.Hidden))
	sp.End()
	matTotal.Inc()
	matNodes.Add(uint64(v.Doc.Len()))
	matRestricted.Add(uint64(v.Restricted))
	matHidden.Add(uint64(v.Hidden))
	return v
}

// copySelected walks the source children of srcParent and adds the selected
// ones under dstParent, recursing only below selected nodes.
func copySelected(v *View, pm *policy.Perms, srcParent, dstParent *xmltree.Node) {
	for _, a := range srcParent.Attributes() {
		label, sel := selectLabel(pm, a)
		if !sel {
			v.Hidden += countNodes(a)
			continue
		}
		dst := mirrorNode(v.Doc, dstParent, a, label)
		if label == xmltree.Restricted {
			v.Restricted++
		}
		copySelected(v, pm, a, dst)
	}
	for _, c := range srcParent.Children() {
		label, sel := selectLabel(pm, c)
		if !sel {
			v.Hidden += countNodes(c)
			continue
		}
		dst := mirrorNode(v.Doc, dstParent, c, label)
		if label == xmltree.Restricted {
			v.Restricted++
		}
		copySelected(v, pm, c, dst)
	}
}

// selectLabel decides visibility of one node: (original label, true) with
// read; (RESTRICTED, true) with position only (axiom 17); ("", false)
// otherwise.
func selectLabel(pm *policy.Perms, n *xmltree.Node) (string, bool) {
	switch {
	case pm.Has(n, policy.Read):
		return n.Label(), true
	case pm.Has(n, policy.Position):
		return xmltree.Restricted, true
	default:
		return "", false
	}
}

// mirrorNode appends a copy of src (with the possibly RESTRICTED label)
// under dstParent, preserving the persistent identifier. Mirroring happens
// in document order under a parent owned by the view, so it cannot fail.
func mirrorNode(doc *xmltree.Document, dstParent, src *xmltree.Node, label string) *xmltree.Node {
	n, err := doc.MirrorChild(dstParent, src.Kind(), label, src.ID())
	if err != nil {
		panic("view: internal mirroring invariant violated: " + err.Error())
	}
	return n
}

func countNodes(n *xmltree.Node) int {
	total := 0
	n.Walk(func(*xmltree.Node) bool {
		total++
		return true
	})
	return total
}

// Snapshot returns an independent deep copy of the view. Incremental
// maintenance patches a cached view in place, so callers that hand a view
// out of the owning lock's scope must snapshot it first. Identifiers are
// preserved by Clone, so write-path mapping still works on the copy.
func (v *View) Snapshot() *View {
	return &View{
		Doc:           v.Doc.Clone(),
		User:          v.User,
		SourceVersion: v.SourceVersion,
		Restricted:    v.Restricted,
		Hidden:        v.Hidden,
	}
}

// Visible reports whether the node with the given source identifier appears
// in the view (with either its label or RESTRICTED).
func (v *View) Visible(id string) bool {
	l, err := labeling.Parse(id)
	if err != nil {
		return false
	}
	return v.Doc.NodeByID(l) != nil
}

// IsRestricted reports whether the node appears in the view with the
// RESTRICTED label. A node legitimately labeled "RESTRICTED" in the source
// is indistinguishable by design (the label semantics is Sandhu & Jajodia's
// cover story).
func (v *View) IsRestricted(id string) bool {
	l, err := labeling.Parse(id)
	if err != nil {
		return false
	}
	n := v.Doc.NodeByID(l)
	return n != nil && n.Label() == xmltree.Restricted
}
