package view

import (
	"fmt"
	"strings"
	"testing"

	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/workload"
	"securexml/internal/xmltree"
	"securexml/internal/xupdate"
)

// diffConfig sizes the differential runs.
const (
	diffPatients = 8
	diffRecords  = 2
	diffOps      = 120
)

var diffSeeds = []int64{1, 2, 3, 4}

// diffEnv builds a fresh hospital document, hierarchy and paper policy.
func diffEnv(t *testing.T, seed int64) (*xmltree.Document, *subject.Hierarchy, *policy.Policy) {
	t.Helper()
	d, err := workload.Hospital(workload.HospitalConfig{Patients: diffPatients, RecordsPerPatient: diffRecords, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	h, err := workload.HospitalHierarchy(diffPatients)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.HospitalPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	return d, h, p
}

// userState is one user's maintained view, perms and maintainer.
type userState struct {
	v  *View
	pm *policy.Perms
	m  *Maintainer
}

// initStates materializes every user's view and compiles their maintainer.
func initStates(t *testing.T, d *xmltree.Document, h *subject.Hierarchy, p *policy.Policy) map[string]*userState {
	t.Helper()
	states := make(map[string]*userState)
	for _, u := range h.Users() {
		pm, err := p.Evaluate(d, h, u)
		if err != nil {
			t.Fatal(err)
		}
		m, ok := NewMaintainer(p, h, u)
		if !ok {
			t.Fatalf("user %s: paper policy must be chain-only", u)
		}
		states[u] = &userState{v: Materialize(d, pm), pm: pm, m: m}
	}
	return states
}

// diffCheck compares a maintained view with a fresh materialization,
// returning a description of the first divergence ("" when identical):
// ids+labels+shape (xmltree.Equal), RESTRICTED and hidden accounting, and
// the serialized form.
func diffCheck(d *xmltree.Document, h *subject.Hierarchy, p *policy.Policy, u string, st *userState) (string, error) {
	pm, err := p.Evaluate(d, h, u)
	if err != nil {
		return "", err
	}
	fresh := Materialize(d, pm)
	switch {
	case !xmltree.Equal(st.v.Doc, fresh.Doc):
		return fmt.Sprintf("tree differs\nmaintained:\n%s\nfresh:\n%s", st.v.Doc.Sketch(), fresh.Doc.Sketch()), nil
	case st.v.Restricted != fresh.Restricted:
		return fmt.Sprintf("Restricted=%d want %d", st.v.Restricted, fresh.Restricted), nil
	case st.v.Hidden != fresh.Hidden:
		return fmt.Sprintf("Hidden=%d want %d", st.v.Hidden, fresh.Hidden), nil
	case st.v.SourceVersion != fresh.SourceVersion:
		return fmt.Sprintf("SourceVersion=%d want %d", st.v.SourceVersion, fresh.SourceVersion), nil
	case st.v.Doc.XML() != fresh.Doc.XML():
		return fmt.Sprintf("serialization differs\nmaintained:\n%s\nfresh:\n%s", st.v.Doc.XML(), fresh.Doc.XML()), nil
	}
	return "", nil
}

// runSequence executes ops in order over a fresh environment, maintaining
// every user's view incrementally and diffing against the oracle after
// every op. It returns the index and description of the first failure, or
// (-1, "").
func runSequence(t *testing.T, seed int64, ops []*xupdate.Op) (int, string) {
	t.Helper()
	d, h, p := diffEnv(t, seed)
	states := initStates(t, d, h, p)
	for i, op := range ops {
		res, err := xupdate.Execute(d, op, nil)
		if err != nil {
			return i, fmt.Sprintf("execute: %v", err)
		}
		for _, u := range h.Users() {
			st := states[u]
			if err := st.m.Apply(st.v, d, st.pm, res.Deltas); err != nil {
				return i, fmt.Sprintf("user %s: apply: %v", u, err)
			}
			diff, err := diffCheck(d, h, p, u, st)
			if err != nil {
				t.Fatal(err)
			}
			if diff != "" {
				return i, fmt.Sprintf("user %s after op %d (%s %s): %s", u, i, op.Kind, op.Select, diff)
			}
		}
	}
	return -1, ""
}

// minimizeOps greedily drops ops while the sequence still fails, so a
// regression dump shows the shortest reproducer found.
func minimizeOps(t *testing.T, seed int64, ops []*xupdate.Op) []*xupdate.Op {
	t.Helper()
	cur := append([]*xupdate.Op(nil), ops...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			trial := append(append([]*xupdate.Op(nil), cur[:i]...), cur[i+1:]...)
			if idx, _ := runSequence(t, seed, trial); idx >= 0 {
				cur = trial
				changed = true
				i--
			}
		}
	}
	return cur
}

func dumpOps(ops []*xupdate.Op) string {
	var b strings.Builder
	for i, op := range ops {
		fmt.Fprintf(&b, "  %2d: %s select=%q", i, op.Kind, op.Select)
		if op.NewValue != "" {
			fmt.Fprintf(&b, " vnew=%q", op.NewValue)
		}
		if op.Content != nil {
			fmt.Fprintf(&b, " content=%q", op.Content.XML())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestIncrementalDifferentialOracle is the ISSUE's differential harness:
// seeded op streams from internal/workload run against the hospital
// document, and after every op the incrementally maintained view of every
// user in the hierarchy must be node-for-node identical (ids, labels,
// RESTRICTED flags, serialization) to a fresh Materialize. On mismatch the
// greedily minimized op sequence is dumped.
func TestIncrementalDifferentialOracle(t *testing.T) {
	for _, seed := range diffSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Generate the op sequence once against a scratch document so
			// the failing sequence can be replayed verbatim.
			d, _, _ := diffEnv(t, seed)
			stream := workload.OpStream(workload.OpConfig{Doc: d, Seed: seed})
			var ops []*xupdate.Op
			for i := 0; i < diffOps; i++ {
				op, err := stream.Next()
				if err != nil {
					t.Fatal(err)
				}
				ops = append(ops, op)
				if _, err := xupdate.Execute(d, op, nil); err != nil {
					t.Fatalf("generating op %d: %v", i, err)
				}
			}
			if idx, diff := runSequence(t, seed, ops); idx >= 0 {
				minimized := minimizeOps(t, seed, ops[:idx+1])
				t.Fatalf("differential mismatch at op %d:\n%s\nminimized reproducer (%d ops, seed %d):\n%s",
					idx, diff, len(minimized), seed, dumpOps(minimized))
			}
		})
	}
}
