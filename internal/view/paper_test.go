package view

// Reproductions of Fig. 1 and the four §4.4.1 views (experiments F1 and E6
// in DESIGN.md): the views of the medical-files database derived for
// secretaries, patient robert, epidemiologists and doctors under the
// axiom-13 policy.

import (
	"testing"

	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
)

// viewFact is a (kind, label) pair in document order.
type viewFact struct {
	kind  xmltree.Kind
	label string
}

func viewFacts(v *View) []viewFact {
	var out []viewFact
	for _, n := range v.Doc.Nodes() {
		out = append(out, viewFact{n.Kind(), n.Label()})
	}
	return out
}

func expectView(t *testing.T, v *View, want []viewFact) {
	t.Helper()
	got := viewFacts(v)
	if len(got) != len(want) {
		t.Fatalf("view has %d nodes, want %d:\n%s", len(got), len(want), v.Doc.Sketch())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("view node %d = (%s, %q), want (%s, %q)\n%s",
				i, got[i].kind, got[i].label, want[i].kind, want[i].label, v.Doc.Sketch())
		}
	}
}

func paperView(t *testing.T, user string) *View {
	t.Helper()
	d, err := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := subject.PaperHierarchy()
	p, err := policy.PaperPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	return materialize(t, d, h, p, user)
}

// TestSecretaryView reproduces the §4.4.1 secretary view: everything except
// diagnosis content, which shows as RESTRICTED ("if the diagnosis is posed,
// they are provided with the RESTRICTED label").
func TestSecretaryView(t *testing.T) {
	v := paperView(t, "beaufort")
	expectView(t, v, []viewFact{
		{xmltree.KindDocument, "/"},
		{xmltree.KindElement, "patients"},
		{xmltree.KindElement, "franck"},
		{xmltree.KindElement, "service"},
		{xmltree.KindText, "otolaryngology"},
		{xmltree.KindElement, "diagnosis"},
		{xmltree.KindText, xmltree.Restricted}, // node(n6, RESTRICTED)
		{xmltree.KindElement, "robert"},
		{xmltree.KindElement, "service"},
		{xmltree.KindText, "pneumology"},
		{xmltree.KindElement, "diagnosis"},
		{xmltree.KindText, xmltree.Restricted},
	})
	if v.Restricted != 2 || v.Hidden != 0 {
		t.Errorf("Restricted=%d Hidden=%d, want 2/0", v.Restricted, v.Hidden)
	}
}

// TestPatientRobertView reproduces the §4.4.1 view for patient robert: the
// patients element and his own medical file only.
func TestPatientRobertView(t *testing.T) {
	v := paperView(t, "robert")
	expectView(t, v, []viewFact{
		{xmltree.KindDocument, "/"},
		{xmltree.KindElement, "patients"},
		{xmltree.KindElement, "robert"},    // n7
		{xmltree.KindElement, "service"},   // n8
		{xmltree.KindText, "pneumology"},   // n9
		{xmltree.KindElement, "diagnosis"}, // n10
		{xmltree.KindText, "pneumonia"},    // n11
	})
	if v.Restricted != 0 {
		t.Errorf("Restricted = %d", v.Restricted)
	}
	// franck's subtree (5 nodes) is hidden.
	if v.Hidden != 5 {
		t.Errorf("Hidden = %d, want 5", v.Hidden)
	}
}

// TestEpidemiologistView reproduces the §4.4.1 epidemiologist view: patient
// names RESTRICTED, all medical content visible.
func TestEpidemiologistView(t *testing.T) {
	v := paperView(t, "richard")
	expectView(t, v, []viewFact{
		{xmltree.KindDocument, "/"},
		{xmltree.KindElement, "patients"},
		{xmltree.KindElement, xmltree.Restricted}, // node(n2, RESTRICTED)
		{xmltree.KindElement, "service"},
		{xmltree.KindText, "otolaryngology"},
		{xmltree.KindElement, "diagnosis"},
		{xmltree.KindText, "tonsillitis"},
		{xmltree.KindElement, xmltree.Restricted}, // node(n7, RESTRICTED)
		{xmltree.KindElement, "service"},
		{xmltree.KindText, "pneumology"},
		{xmltree.KindElement, "diagnosis"},
		{xmltree.KindText, "pneumonia"},
	})
	if v.Restricted != 2 {
		t.Errorf("Restricted = %d, want 2", v.Restricted)
	}
}

// TestDoctorView: "Doctors can see everything without restriction" — the
// view is the whole database of axiom 1.
func TestDoctorView(t *testing.T) {
	v := paperView(t, "laporte")
	d, err := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(v.Doc, d) {
		t.Errorf("doctor view is not the full database:\n%s", v.Doc.Sketch())
	}
}

// TestFig1View reproduces Fig. 1 exactly: a user with read on everything
// except the patient-name element, on which they hold only position. The
// right tree of the figure: /patients, /RESTRICTED, /diagnosis,
// text()pneumonia.
func TestFig1View(t *testing.T) {
	d, err := xmltree.ParseString(
		`<patients><robert><diagnosis>pneumonia</diagnosis></robert></patients>`,
		xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := subject.NewHierarchy()
	if err := h.AddUser("s"); err != nil {
		t.Fatal(err)
	}
	p := policy.New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(p.Grant(h, policy.Read, "/descendant-or-self::node()", "s"))
	must(p.Revoke(h, policy.Read, "/patients/robert", "s"))
	must(p.Grant(h, policy.Position, "/patients/robert", "s"))
	v := materialize(t, d, h, p, "s")
	expectView(t, v, []viewFact{
		{xmltree.KindDocument, "/"},
		{xmltree.KindElement, "patients"},
		{xmltree.KindElement, xmltree.Restricted},
		{xmltree.KindElement, "diagnosis"},
		{xmltree.KindText, "pneumonia"},
	})
}
