// Incremental view maintenance: patching a materialized view after an
// XUpdate instead of re-deriving it from scratch (axioms 15–17 applied to
// the touched subtree only).
//
// Soundness rests on the policy.NodeEvaluator eligibility gate: when every
// rule applicable to the user is chain-only (membership of a node in the
// rule's select set depends solely on the node's root-to-node labels and
// kinds), an update can change perm(s, n, r) only for nodes inside the
// subtree it touched —
//
//   - a relabel (axioms 2–5 / 18–21) changes the chain of exactly the
//     relabeled node's subtree, so only there can rule membership flip;
//   - an insert (axioms 6–7 / 22–24) introduces new chains only for the
//     inserted nodes; existing chains are untouched (sibling positions do
//     not matter — positional predicates are outside the fragment);
//   - a remove (axioms 8–9 / 25) deletes chains; surviving chains are
//     untouched.
//
// The view derivation itself (axioms 15–17) is then re-run over just that
// subtree: Rescore recomputes the perm cells, reconcile mirrors the
// show/RESTRICTED/hide decision into the view tree. Policy changes (a new
// rule can address any node) and non-chain-only policies fall back to full
// Evaluate + Materialize — the caller counts those fallbacks.
package view

import (
	"context"
	"fmt"

	"securexml/internal/labeling"
	"securexml/internal/obs"
	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xupdate"
)

// Telemetry: incremental applications and their duration, distinguishable
// from full materializations on /metrics.
var (
	incStage   = obs.Stage("view_incremental")
	incApplied = obs.Default().Counter("xmlsec_view_incremental_applied_total")
)

// Maintainer patches one user's cached view in response to XUpdate deltas.
// It is tied to a (policy, hierarchy, user) triple; any policy change
// invalidates it.
type Maintainer struct {
	ne *policy.NodeEvaluator
}

// NewMaintainer compiles the per-node form of the policy for user. It
// returns (nil, false) when the policy is not chain-only for this user, in
// which case incremental maintenance would be unsound and callers must
// keep re-materializing.
func NewMaintainer(pol *policy.Policy, h *subject.Hierarchy, user string) (*Maintainer, bool) {
	ne, ok := pol.NodeEvaluator(h, user)
	if !ok {
		return nil, false
	}
	return &Maintainer{ne: ne}, true
}

// Apply patches v — materialized from an earlier version of src under pm —
// so that it equals Materialize(src, Evaluate(src)) after the given deltas
// were applied to src. pm is updated in place alongside the view. On error
// both v and pm may be half-patched and must be discarded.
func (m *Maintainer) Apply(v *View, src *xmltree.Document, pm *policy.Perms, deltas []xupdate.Delta) error {
	return m.ApplyCtx(context.Background(), v, src, pm, deltas)
}

// ApplyCtx is Apply with request-scoped tracing: under an active trace it
// records a view_incremental span annotated with the delta count.
func (m *Maintainer) ApplyCtx(ctx context.Context, v *View, src *xmltree.Document, pm *policy.Perms, deltas []xupdate.Delta) error {
	_, sp := obs.StartSpanCtx(ctx, "view_incremental", incStage)
	defer sp.End()
	sp.AnnotateInt("deltas", int64(len(deltas)))
	for _, d := range deltas {
		if err := m.applyDelta(v, src, pm, d); err != nil {
			return err
		}
	}
	v.Hidden = src.Len() - v.Doc.Len()
	v.SourceVersion = src.Version()
	pm.SetDocVersion(src.Version())
	incApplied.Inc()
	return nil
}

// applyDelta processes one structural change.
func (m *Maintainer) applyDelta(v *View, src *xmltree.Document, pm *policy.Perms, d xupdate.Delta) error {
	id, err := labeling.Parse(d.NodeID)
	if err != nil {
		return fmt.Errorf("view: delta node id: %w", err)
	}
	if d.Kind == xupdate.DeltaRemove {
		// Scrub perm cells first: removed identifiers can be re-allocated
		// by a later insert in the same batch.
		pm.Forget(d.RemovedIDs...)
		return dropView(v, id)
	}
	sn := src.NodeByID(id)
	if sn == nil {
		// The inserted/relabeled node was itself removed by a later delta
		// in this batch; the remove delta (processed in order) already
		// dropped it, but be defensive about view leftovers.
		return dropView(v, id)
	}
	// Re-run axiom 14 over the touched subtree, then axioms 15–17.
	var rescoreErr error
	sn.Walk(func(n *xmltree.Node) bool {
		if err := m.ne.Rescore(pm, n); err != nil {
			rescoreErr = err
			return false
		}
		return true
	})
	if rescoreErr != nil {
		return rescoreErr
	}
	return m.reconcile(v, pm, sn)
}

// dropView removes the subtree rooted at id from the view, if present.
func dropView(v *View, id labeling.Label) error {
	vn := v.Doc.NodeByID(id)
	if vn == nil {
		return nil
	}
	v.Restricted -= restrictedIn(vn)
	return v.Doc.Remove(vn)
}

// reconcile brings the view's rendition of source node sn (and its whole
// subtree) in line with pm. sn's parent decides where to attach: if the
// parent is not visible, sn cannot be either (the axiom 16/17 "parent must
// be selected" condition).
func (m *Maintainer) reconcile(v *View, pm *policy.Perms, sn *xmltree.Node) error {
	parent := sn.Parent()
	if parent == nil {
		return fmt.Errorf("view: cannot reconcile the document node")
	}
	vp := v.Doc.NodeByID(parent.ID())
	if vp == nil {
		// Parent hidden ⇒ whole subtree hidden, whatever sn's own perms.
		return dropView(v, sn.ID())
	}
	return m.reconcileUnder(v, pm, sn, vp)
}

// reconcileUnder reconciles sn below the (visible) view parent vp.
func (m *Maintainer) reconcileUnder(v *View, pm *policy.Perms, sn *xmltree.Node, vp *xmltree.Node) error {
	label, sel := selectLabel(pm, sn)
	vn := v.Doc.NodeByID(sn.ID())
	if !sel {
		if vn != nil {
			if err := dropView(v, sn.ID()); err != nil {
				return err
			}
		}
		return nil
	}
	if vn == nil {
		n, err := v.Doc.MirrorInsert(vp, sn.Kind(), label, sn.ID())
		if err != nil {
			return fmt.Errorf("view: mirroring %s: %w", sn.ID(), err)
		}
		vn = n
		if label == xmltree.Restricted {
			v.Restricted++
		}
	} else if vn.Label() != label {
		if vn.Label() == xmltree.Restricted {
			v.Restricted--
		}
		if label == xmltree.Restricted {
			v.Restricted++
		}
		if err := v.Doc.Rename(vn, label); err != nil {
			return err
		}
	}
	for _, a := range sn.Attributes() {
		if err := m.reconcileUnder(v, pm, a, vn); err != nil {
			return err
		}
	}
	for _, c := range sn.Children() {
		if err := m.reconcileUnder(v, pm, c, vn); err != nil {
			return err
		}
	}
	return nil
}

// restrictedIn counts RESTRICTED-labeled nodes in a view subtree.
func restrictedIn(n *xmltree.Node) int {
	total := 0
	n.Walk(func(m *xmltree.Node) bool {
		if m.Label() == xmltree.Restricted {
			total++
		}
		return true
	})
	return total
}
