package view

import (
	"testing"

	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
	"securexml/internal/xupdate"
)

const incXML = `<patients>
  <franck><service>otolaryngology</service><diagnosis>tonsillitis</diagnosis></franck>
  <robert><service>pneumology</service><diagnosis>pneumonia</diagnosis></robert>
</patients>`

func incEnv(t *testing.T) (*xmltree.Document, *subject.Hierarchy, *policy.Policy) {
	t.Helper()
	d, err := xmltree.ParseString(incXML, xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := subject.NewHierarchy()
	if err := h.AddRole("staff"); err != nil {
		t.Fatal(err)
	}
	for _, role := range []string{"secretary", "doctor", "epidemiologist"} {
		if err := h.AddRole(role, "staff"); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.AddRole("patient"); err != nil {
		t.Fatal(err)
	}
	for user, role := range map[string]string{"beaufort": "secretary", "laporte": "doctor", "richard": "epidemiologist", "franck": "patient", "robert": "patient"} {
		if err := h.AddUser(user, role); err != nil {
			t.Fatal(err)
		}
	}
	p, err := policy.PaperPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	return d, h, p
}

// requireViewsEqual asserts structural equality plus the maintained
// counters and the serialized form.
func requireViewsEqual(t *testing.T, got, want *View, ctx string) {
	t.Helper()
	if !xmltree.Equal(got.Doc, want.Doc) {
		t.Fatalf("%s: maintained view differs\nmaintained:\n%s\nfresh:\n%s", ctx, got.Doc.XML(), want.Doc.XML())
	}
	if got.Restricted != want.Restricted {
		t.Errorf("%s: Restricted = %d, want %d", ctx, got.Restricted, want.Restricted)
	}
	if got.Hidden != want.Hidden {
		t.Errorf("%s: Hidden = %d, want %d", ctx, got.Hidden, want.Hidden)
	}
	if got.SourceVersion != want.SourceVersion {
		t.Errorf("%s: SourceVersion = %d, want %d", ctx, got.SourceVersion, want.SourceVersion)
	}
	if g, w := got.Doc.XML(), want.Doc.XML(); g != w {
		t.Errorf("%s: serialization differs\n got: %s\nwant: %s", ctx, g, w)
	}
}

// TestMaintainerPaperOps drives each XUpdate kind through the unsecured
// executor and checks the maintained view against a fresh Materialize for
// every user of the paper scenario.
func TestMaintainerPaperOps(t *testing.T) {
	ops := []struct {
		name string
		op   *xupdate.Op
	}{
		{"rename", mustOp(t, xupdate.Rename, "/patients/franck/diagnosis", "pathology")},
		{"update-text", mustOp(t, xupdate.Update, "/patients/robert/diagnosis", "bronchitis")},
		{"append", mustOp(t, xupdate.Append, "/patients", "<durand><service>cardiology</service><diagnosis>angina</diagnosis></durand>")},
		{"insert-before", mustOp(t, xupdate.InsertBefore, "/patients/robert", "<dupont><diagnosis>flu</diagnosis></dupont>")},
		{"insert-after", mustOp(t, xupdate.InsertAfter, "/patients/franck/service", "<ward>B2</ward>")},
		{"remove", mustOp(t, xupdate.Remove, "/patients/franck/diagnosis", "")},
		{"rename-patient", mustOp(t, xupdate.Rename, "/patients/robert", "benoit")},
	}
	users := []string{"beaufort", "laporte", "richard", "franck", "robert"}
	for _, tc := range ops {
		t.Run(tc.name, func(t *testing.T) {
			d, h, p := incEnv(t)
			type state struct {
				v  *View
				pm *policy.Perms
				m  *Maintainer
			}
			states := make(map[string]*state)
			for _, u := range users {
				pm, err := p.Evaluate(d, h, u)
				if err != nil {
					t.Fatal(err)
				}
				m, ok := NewMaintainer(p, h, u)
				if !ok {
					t.Fatalf("%s: paper policy should be maintainable", u)
				}
				states[u] = &state{v: Materialize(d, pm), pm: pm, m: m}
			}
			res, err := xupdate.Execute(d, tc.op, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Deltas) == 0 {
				t.Fatalf("op produced no deltas (selected %d, applied %d)", res.Selected, res.Applied)
			}
			for _, u := range users {
				st := states[u]
				if err := st.m.Apply(st.v, d, st.pm, res.Deltas); err != nil {
					t.Fatalf("%s: apply: %v", u, err)
				}
				pmFresh, err := p.Evaluate(d, h, u)
				if err != nil {
					t.Fatal(err)
				}
				requireViewsEqual(t, st.v, Materialize(d, pmFresh), u)
			}
		})
	}
}

// TestMaintainerRenameFlipsPatientVisibility: renaming robert's element to
// another name must make robert's whole subtree disappear from robert's
// view (rule 5 matches by name() = $USER) — the hardest relabel case: the
// delta is one node but visibility flips for the entire subtree.
func TestMaintainerRenameFlipsPatientVisibility(t *testing.T) {
	d, h, p := incEnv(t)
	pm, err := p.Evaluate(d, h, "robert")
	if err != nil {
		t.Fatal(err)
	}
	v := Materialize(d, pm)
	m, ok := NewMaintainer(p, h, "robert")
	if !ok {
		t.Fatal("not maintainable")
	}
	if !v.Visible(d.RootElement().Children()[1].ID().String()) {
		t.Fatal("robert should see his own element before the rename")
	}
	res, err := xupdate.Execute(d, mustOp(t, xupdate.Rename, "/patients/robert", "benoit"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(v, d, pm, res.Deltas); err != nil {
		t.Fatal(err)
	}
	if v.Visible(d.RootElement().Children()[1].ID().String()) {
		t.Error("renamed element still visible to robert")
	}
	pmFresh, err := p.Evaluate(d, h, "robert")
	if err != nil {
		t.Fatal(err)
	}
	requireViewsEqual(t, v, Materialize(d, pmFresh), "robert after rename")

	// And back: renaming it to robert again restores visibility.
	res, err = xupdate.Execute(d, mustOp(t, xupdate.Rename, "/patients/benoit", "robert"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(v, d, pm, res.Deltas); err != nil {
		t.Fatal(err)
	}
	pmFresh, err = p.Evaluate(d, h, "robert")
	if err != nil {
		t.Fatal(err)
	}
	requireViewsEqual(t, v, Materialize(d, pmFresh), "robert after rename back")
	if !v.Visible(d.RootElement().Children()[1].ID().String()) {
		t.Error("re-renamed element not visible to robert")
	}
}

// TestMaintainerOutOfOrderVisibility: a node becoming visible between two
// already-visible siblings exercises MirrorInsert's splice (MirrorChild
// alone would reject the out-of-order mirror).
func TestMaintainerOutOfOrderVisibility(t *testing.T) {
	d, h, p := incEnv(t)
	// franck initially sees /patients and his own subtree; robert's element
	// sits between franck's element and nothing — so make a third patient
	// named zoe, rename franck→zoe later... Simpler: use robert's view and
	// rename the *middle* sibling. Build patients: franck, robert. For
	// robert, franck's element is hidden. Renaming franck→robert is wrong
	// (duplicate); instead evaluate for the user "franck" after franck's
	// element was renamed away and back while a later sibling stayed
	// visible is already covered above. Here we check the splice directly.
	pm, err := p.Evaluate(d, h, "franck")
	if err != nil {
		t.Fatal(err)
	}
	v := Materialize(d, pm)
	m, ok := NewMaintainer(p, h, "franck")
	if !ok {
		t.Fatal("not maintainable")
	}
	// Give franck a later visible sibling by renaming robert→franck? Not
	// allowed by uniqueness of login-named elements in spirit; but the
	// tree has no such constraint, and rule 5 matches by name, so a second
	// "franck" element becomes visible. Then renaming the *first* franck
	// away and back forces a mirror before an existing sibling.
	steps := []*xupdate.Op{
		mustOp(t, xupdate.Rename, "/patients/robert", "franck"),
		mustOp(t, xupdate.Rename, "/patients/*[1]", "someone"),
		mustOp(t, xupdate.Rename, "/patients/*[1]", "franck"),
	}
	for i, op := range steps {
		res, err := xupdate.Execute(d, op, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Apply(v, d, pm, res.Deltas); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		pmFresh, err := p.Evaluate(d, h, "franck")
		if err != nil {
			t.Fatal(err)
		}
		requireViewsEqual(t, v, Materialize(d, pmFresh), op.Select)
	}
}

// TestSnapshotIndependence: mutating the original view must not affect a
// snapshot.
func TestSnapshotIndependence(t *testing.T) {
	d, h, p := incEnv(t)
	pm, err := p.Evaluate(d, h, "laporte")
	if err != nil {
		t.Fatal(err)
	}
	v := Materialize(d, pm)
	snap := v.Snapshot()
	if !xmltree.Equal(snap.Doc, v.Doc) {
		t.Fatal("snapshot differs from original")
	}
	m, ok := NewMaintainer(p, h, "laporte")
	if !ok {
		t.Fatal("not maintainable")
	}
	res, err := xupdate.Execute(d, mustOp(t, xupdate.Remove, "/patients/franck", ""), nil)
	if err != nil {
		t.Fatal(err)
	}
	before := snap.Doc.XML()
	if err := m.Apply(v, d, pm, res.Deltas); err != nil {
		t.Fatal(err)
	}
	if snap.Doc.XML() != before {
		t.Error("maintaining the original mutated the snapshot")
	}
}

func mustOp(t *testing.T, kind xupdate.Kind, path, arg string) *xupdate.Op {
	t.Helper()
	op, err := xupdate.NewOp(kind, path, arg)
	if err != nil {
		t.Fatal(err)
	}
	return op
}
