package view

import (
	"fmt"
	"strings"
	"testing"

	"securexml/internal/workload"
	"securexml/internal/xmltree"
	"securexml/internal/xupdate"
)

// fuzzPathTo builds a positional path addressing exactly n (mirrors the
// workload generator's scheme).
func fuzzPathTo(n *xmltree.Node) string {
	var segs []string
	for c := n; c.Parent() != nil; c = c.Parent() {
		p := c.Parent()
		if c.Kind() == xmltree.KindAttribute {
			for i, a := range p.Attributes() {
				if a == c {
					segs = append(segs, fmt.Sprintf("attribute::node()[%d]", i+1))
					break
				}
			}
			continue
		}
		segs = append(segs, fmt.Sprintf("node()[%d]", p.ChildIndex(c)+1))
	}
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return "/" + strings.Join(segs, "/")
}

var fuzzLabels = []string{"diagnosis", "service", "record", "p0", "p1", "RESTRICTED", "x"}

// fuzzOp decodes one byte pair into an executable op against the live
// document, or nil when the combination is not constructible.
func fuzzOp(d *xmltree.Document, kindB, targetB byte) *xupdate.Op {
	nodes := d.Nodes()
	if len(nodes) == 0 {
		return nil
	}
	target := nodes[int(targetB)%len(nodes)]
	kind := xupdate.Kind(int(kindB) % 6)
	var arg string
	switch kind {
	case xupdate.Update, xupdate.Rename:
		arg = fuzzLabels[int(targetB)%len(fuzzLabels)]
	case xupdate.Append, xupdate.InsertBefore, xupdate.InsertAfter:
		// Single top node, so a failed graft leaves the document unchanged.
		arg = fmt.Sprintf("<rec><v>f%d</v></rec>", int(kindB)+int(targetB))
	case xupdate.Remove:
		arg = ""
	}
	op, err := xupdate.NewOp(kind, fuzzPathTo(target), arg)
	if err != nil {
		return nil
	}
	return op
}

// FuzzIncrementalView drives byte-pair-decoded XUpdate ops over a small
// hospital document and checks, after every op, that the incrementally
// maintained views of a staff user, an epidemiologist and a patient equal
// a fresh Materialize (full-rebuild oracle).
func FuzzIncrementalView(f *testing.F) {
	f.Add([]byte{0, 3, 1, 7})                         // update + rename
	f.Add([]byte{5, 9, 2, 4, 3, 2})                   // remove + append + insert
	f.Add([]byte{1, 2, 1, 2, 5, 2})                   // rename twice then remove
	f.Add([]byte{2, 0, 4, 1, 0, 250, 1, 128, 5, 5})   // doc-node and high-index targets
	f.Add([]byte{1, 6, 1, 6, 1, 6, 5, 6, 2, 6, 3, 6}) // hammer one node
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 64 {
			script = script[:64]
		}
		d, err := workload.Hospital(workload.HospitalConfig{Patients: 3, RecordsPerPatient: 1, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		h, err := workload.HospitalHierarchy(3)
		if err != nil {
			t.Fatal(err)
		}
		p, err := workload.HospitalPolicy(h)
		if err != nil {
			t.Fatal(err)
		}
		users := []string{"beaufort", "richard", "p0"}
		states := initStates(t, d, h, p)
		for i := 0; i+1 < len(script); i += 2 {
			op := fuzzOp(d, script[i], script[i+1])
			if op == nil {
				continue
			}
			res, err := xupdate.Execute(d, op, nil)
			if err != nil {
				// Structurally impossible (e.g. second root); single-top
				// fragments leave the document unchanged on error.
				continue
			}
			for _, u := range users {
				s := states[u]
				if err := s.m.Apply(s.v, d, s.pm, res.Deltas); err != nil {
					t.Fatalf("pair %d user %s: apply: %v", i/2, u, err)
				}
				diff, err := diffCheck(d, h, p, u, s)
				if err != nil {
					t.Fatal(err)
				}
				if diff != "" {
					t.Fatalf("pair %d (%s %s) user %s: %s", i/2, op.Kind, op.Select, u, diff)
				}
			}
		}
	})
}
