GO ?= go
FUZZTIME ?= 10s

.PHONY: all verify vet lint lint-fix-check race fuzz bench-smoke

all: verify vet lint

# Tier-1 gate: everything builds, every test passes.
verify:
	$(GO) build ./...
	$(GO) test ./...

# Source-level invariant gate: go vet, formatting, and the seven
# xmlsec-vet passes (viewbypass, privconst, obslabel, ctxflow, lockguard,
# cowdiscipline, snapshotimmut) under the committed baseline — see
# DESIGN.md S22 and S11 for the axiom and invariant mapping.
vet:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) run ./cmd/xmlsec-vet -baseline vet-baseline.json

# Policy-level analysis: the static policy analyzer's self-check on the
# paper's 12-rule policy (must report zero findings and exit 0).
lint:
	$(GO) run ./cmd/xmlsec-lint -paper

# Repair-engine gate: generate seeded faulty corpora for every scenario
# shape, apply xmlsec-lint -fix -write, and fail if a re-lint still sees a
# finding. The faulty and repaired reports are left in lint-fix/ so CI can
# upload them as artifacts.
lint-fix-check:
	@rm -rf lint-fix && mkdir -p lint-fix
	@set -e; for shape in acl rbac rebac hospital; do \
		echo "lint-fix-check: $$shape"; \
		$(GO) run ./cmd/xmlsec-lint -scenario $$shape -rules 200 -faults 6 -seed 42 \
			-emit lint-fix/$$shape.snapshot -json > lint-fix/$$shape.faulty.json || true; \
		$(GO) run ./cmd/xmlsec-lint -json -fix -write lint-fix/$$shape.snapshot \
			> lint-fix/$$shape.repairs.json || { echo "$$shape: -fix -write failed"; exit 1; }; \
		$(GO) run ./cmd/xmlsec-lint lint-fix/$$shape.snapshot \
			|| { echo "$$shape: findings survived -fix -write"; exit 1; }; \
	done

# Concurrency gate: the full suite under the race detector, including the
# core concurrent-session stress test.
race:
	$(GO) test -race ./...

# Telemetry smoke: run the instrumented bench workload at a fixed size and
# validate the emitted BENCH_obs.json against its schema.
bench-smoke:
	$(GO) run ./cmd/xmlsec-bench -exp obs -quick -obs-iters 250 -out BENCH_obs.json
	$(GO) run ./cmd/xmlsec-bench -validate BENCH_obs.json
	$(GO) run ./cmd/xmlsec-bench -exp b12 -quick -b12-out BENCH_b12_quick.json
	$(GO) run ./cmd/xmlsec-bench -validate-b12 BENCH_b12_quick.json
	$(GO) run ./cmd/xmlsec-bench -exp b14 -quick -b14-out BENCH_b14_quick.json
	$(GO) run ./cmd/xmlsec-bench -validate-b14 BENCH_b14_quick.json
	$(GO) run ./cmd/xmlsec-bench -exp b15 -quick -b15-out BENCH_b15_quick.json
	$(GO) run ./cmd/xmlsec-bench -validate-b15 BENCH_b15_quick.json

# Bounded fuzzing of the parser targets and the incremental-view
# differential target from their seed corpora.
fuzz:
	$(GO) test ./internal/xpath -fuzz FuzzCompile -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/xupdate -fuzz FuzzParseModifications -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/datalog -fuzz FuzzParse -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/view -fuzz FuzzIncrementalView -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/policyanalysis -fuzz FuzzRepair -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/rewrite -fuzz FuzzRewrite -fuzztime $(FUZZTIME) -run '^$$'
