package securexml_test

// The performance study of EXPERIMENTS.md (experiments B1–B6 in DESIGN.md).
// The paper itself has no empirical evaluation; these benchmarks provide
// the scaling characterization of each design decision the model forces:
// view materialization cost, XPath axis costs, secured-vs-unsecured write
// overhead, labeling scheme behaviour, logic-vs-native engine gap, and
// conflict resolution scaling.

import (
	"fmt"
	"testing"

	"strings"

	"securexml/internal/access"
	"securexml/internal/baseline"
	"securexml/internal/core"
	"securexml/internal/labeling"
	"securexml/internal/logicmodel"
	"securexml/internal/policy"
	"securexml/internal/qfilter"
	"securexml/internal/subject"
	"securexml/internal/view"
	"securexml/internal/workload"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
	"securexml/internal/xslt"
	"securexml/internal/xupdate"
)

// mustHospital builds the standard bench environment.
func mustHospital(b *testing.B, patients, records int) (*xmltree.Document, *subject.Hierarchy, *policy.Policy) {
	b.Helper()
	d, err := workload.Hospital(workload.HospitalConfig{Patients: patients, RecordsPerPatient: records, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	h, err := workload.HospitalHierarchy(patients)
	if err != nil {
		b.Fatal(err)
	}
	p, err := workload.HospitalPolicy(h)
	if err != nil {
		b.Fatal(err)
	}
	return d, h, p
}

// --- B1: view materialization -------------------------------------------------

// BenchmarkViewMaterialization sweeps document size × policy size for the
// secretary role (whose view mixes read, position and full visibility).
func BenchmarkViewMaterialization(b *testing.B) {
	for _, patients := range []int{10, 100, 1000, 5000} {
		for _, extraRules := range []int{0, 32, 128} {
			name := fmt.Sprintf("patients=%d/extraRules=%d", patients, extraRules)
			b.Run(name, func(b *testing.B) {
				d, err := workload.Hospital(workload.HospitalConfig{Patients: patients, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				h, err := workload.HospitalHierarchy(patients)
				if err != nil {
					b.Fatal(err)
				}
				p, err := workload.ScaledPolicy(h, extraRules)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pm, err := p.Evaluate(d, h, "beaufort")
					if err != nil {
						b.Fatal(err)
					}
					v := view.Materialize(d, pm)
					if v.Doc.Len() == 0 {
						b.Fatal("empty view")
					}
				}
			})
		}
	}
}

// --- B2: XPath axis costs -------------------------------------------------------

// BenchmarkXPath sweeps representative axes and selectivities on a random
// tree.
func BenchmarkXPath(b *testing.B) {
	d, err := workload.RandomTree(workload.TreeConfig{Nodes: 20000, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	queries := []struct {
		name, path string
	}{
		{"child", "/root/*"},
		{"descendant", "//item"}, // served by the element-name index
		{"descendant-walk", "/descendant-or-self::*/self::item"}, // same answer, full walk
		{"descendant-text", "//item/text()"},
		{"predicate-position", "//group[2]"},
		{"predicate-value", "//item[text() = 'v100']"},
		{"ancestor", "//item[1]/ancestor::*"},
		{"following-sibling", "/root/*[1]/following-sibling::*"},
		{"union", "//a | //b"},
		{"count", "count(//item)"},
	}
	for _, q := range queries {
		b.Run(q.name, func(b *testing.B) {
			c, err := xpath.Compile(q.path)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Eval(d.Root(), nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B3: secured vs unsecured vs baseline writes --------------------------------

// BenchmarkSecuredUpdate compares the three write paths on the same
// operation: the paper's view-mediated writes, the [10]-style baseline
// (source-evaluated), and the raw unsecured executor.
func BenchmarkSecuredUpdate(b *testing.B) {
	const patients = 500
	op := &xupdate.Op{Kind: xupdate.Update, Select: "/patients/p250/diagnosis", NewValue: "seen"}

	b.Run("secured-view-writes", func(b *testing.B) {
		d, h, p := mustHospital(b, patients, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := access.Execute(d, h, p, "laporte", op); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("baseline-source-writes", func(b *testing.B) {
		d, h, p := mustHospital(b, patients, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.Execute(d, h, p, "laporte", op); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unsecured-floor", func(b *testing.B) {
		d, _, _ := mustHospital(b, patients, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := xupdate.Execute(d, op, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- B4: labeling scheme ablation ----------------------------------------------

// BenchmarkLabelScheme compares fracpath and lsdx on the two adversarial
// patterns: hot-spot appends and repeated midpoint splits. It also reports
// the final key length as a proxy for storage growth.
func BenchmarkLabelScheme(b *testing.B) {
	for _, name := range []string{"fracpath", "lsdx"} {
		scheme, err := labeling.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/append", func(b *testing.B) {
			b.ReportAllocs()
			prev := ""
			for i := 0; i < b.N; i++ {
				k, err := scheme.Between(prev, "")
				if err != nil {
					b.Fatal(err)
				}
				prev = k
			}
			b.ReportMetric(float64(len(prev)), "keybytes")
		})
		b.Run(name+"/midsplit", func(b *testing.B) {
			b.ReportAllocs()
			lo, _ := scheme.First()
			hi, err := scheme.Between(lo, "")
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				mid, err := scheme.Between(lo, hi)
				if err != nil {
					b.Fatal(err)
				}
				if i%2 == 0 {
					lo = mid
				} else {
					hi = mid
				}
			}
			b.ReportMetric(float64(len(lo)), "keybytes")
		})
		b.Run(name+"/document-build", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := workload.RandomTree(workload.TreeConfig{Nodes: 2000, Seed: 5, Scheme: scheme}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B5: logic reference vs native engines --------------------------------------

// BenchmarkLogicVsNative derives the same secretary view through the
// Datalog encoding of the axioms and through the native engines — the
// quantitative argument for shipping a native engine with a logic oracle in
// tests rather than shipping the logic engine.
func BenchmarkLogicVsNative(b *testing.B) {
	for _, patients := range []int{5, 20, 50} {
		d, err := workload.Hospital(workload.HospitalConfig{Patients: patients, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		h, err := workload.HospitalHierarchy(patients)
		if err != nil {
			b.Fatal(err)
		}
		p, err := workload.HospitalPolicy(h)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("native/patients=%d", patients), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pm, err := p.Evaluate(d, h, "beaufort")
				if err != nil {
					b.Fatal(err)
				}
				_ = view.Materialize(d, pm)
			}
		})
		b.Run(fmt.Sprintf("logic/patients=%d", patients), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := logicmodel.Build(d, h, p, "beaufort")
				if err != nil {
					b.Fatal(err)
				}
				if len(m.ViewFacts()) == 0 {
					b.Fatal("empty logic view")
				}
			}
		})
	}
}

// --- B6: conflict resolution scaling ---------------------------------------------

// BenchmarkConflictResolution sweeps the rule count: axiom 14 resolution is
// linear in the applicable rules, each contributing one XPath evaluation.
func BenchmarkConflictResolution(b *testing.B) {
	d, err := workload.Hospital(workload.HospitalConfig{Patients: 200, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, extra := range []int{0, 16, 64, 256, 1024} {
		h, err := workload.HospitalHierarchy(200)
		if err != nil {
			b.Fatal(err)
		}
		p, err := workload.ScaledPolicy(h, extra)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("rules=%d", p.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Evaluate(d, h, "laporte"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B7: query-filter enforcement vs view materialization ------------------------

// BenchmarkQueryFilter is the ablation for the paper's §5 future-work
// strategy (implemented in internal/qfilter): evaluate queries on the
// source through a security filter instead of materializing the view.
// Sweeps document size × queries-per-policy-epoch to expose the crossover:
// filtering wins one-shot queries, materialization amortizes.
func BenchmarkQueryFilter(b *testing.B) {
	for _, patients := range []int{100, 1000, 5000} {
		d, err := workload.Hospital(workload.HospitalConfig{Patients: patients, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		h, err := workload.HospitalHierarchy(patients)
		if err != nil {
			b.Fatal(err)
		}
		p, err := workload.HospitalPolicy(h)
		if err != nil {
			b.Fatal(err)
		}
		pm, err := p.Evaluate(d, h, "beaufort")
		if err != nil {
			b.Fatal(err)
		}
		query := xpath.MustCompile("/patients/*[service = 'cardiology']")
		b.Run(fmt.Sprintf("filtered-oneshot/patients=%d", patients), func(b *testing.B) {
			sec := qfilter.ForPerms(pm)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := query.SelectFiltered(d.Root(), nil, sec); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("view-oneshot/patients=%d", patients), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v := view.Materialize(d, pm) // not cached: one-shot
				if _, err := query.Select(v.Doc.Root(), nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("view-amortized-100q/patients=%d", patients), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v := view.Materialize(d, pm)
				for q := 0; q < 100; q++ {
					if _, err := query.Select(v.Doc.Root(), nil); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("filtered-100q/patients=%d", patients), func(b *testing.B) {
			sec := qfilter.ForPerms(pm)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for q := 0; q < 100; q++ {
					if _, err := query.SelectFiltered(d.Root(), nil, sec); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- B8: session layer — cache and journal overheads ------------------------------

// BenchmarkSessionLayer measures what the core layer adds on top of the raw
// engines: the per-query cost with the view cache warm (the common case), a
// cold query after an invalidating write, and the write cost with and
// without the operation journal.
func BenchmarkSessionLayer(b *testing.B) {
	const patients = 1000
	setup := func(b *testing.B, opts ...core.Option) (*core.Database, *core.Session) {
		b.Helper()
		d, err := workload.Hospital(workload.HospitalConfig{Patients: patients, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		db := core.New(append([]core.Option{core.WithAuditLimit(0)}, opts...)...)
		if err := db.LoadXMLString(d.XML()); err != nil {
			b.Fatal(err)
		}
		h := []error{
			db.AddRole("staff"), db.AddRole("doctor", "staff"),
			db.AddUser("laporte", "doctor"),
			db.Grant(policy.Read, "/descendant-or-self::node()", "staff"),
			db.Grant(policy.Update, "//diagnosis/node()", "doctor"),
		}
		for _, err := range h {
			if err != nil {
				b.Fatal(err)
			}
		}
		s, err := db.Session("laporte")
		if err != nil {
			b.Fatal(err)
		}
		return db, s
	}

	b.Run("query-warm-cache", func(b *testing.B) {
		_, s := setup(b)
		if _, err := s.Query("//diagnosis"); err != nil { // warm it
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Query("/patients/p500/diagnosis/text()"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("query-cold-after-write", func(b *testing.B) {
		_, s := setup(b)
		op := &xupdate.Op{Kind: xupdate.Update, Select: "/patients/p1/diagnosis", NewValue: "x"}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Update(op); err != nil { // invalidates the cache
				b.Fatal(err)
			}
			if _, err := s.Query("/patients/p500/diagnosis/text()"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("update-no-journal", func(b *testing.B) {
		_, s := setup(b)
		op := &xupdate.Op{Kind: xupdate.Update, Select: "/patients/p500/diagnosis", NewValue: "x"}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Update(op); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("update-journaled", func(b *testing.B) {
		var sink strings.Builder
		_, s := setup(b, core.WithJournal(&sink, 0))
		op := &xupdate.Op{Kind: xupdate.Update, Select: "/patients/p500/diagnosis", NewValue: "x"}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Update(op); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- B9: the XSLT security processor ------------------------------------------------

// BenchmarkXSLTSecurityProcessor compares the two ways to produce a
// per-user transformed report: filtered transform directly on the source
// (the §5 security processor) vs materializing the view and transforming
// it — the stylesheet-level version of the B7 ablation.
func BenchmarkXSLTSecurityProcessor(b *testing.B) {
	sheet := xslt.MustParseStylesheet(`
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:template match="/">
    <report patients="{count(/patients/*)}"><xsl:apply-templates select="/patients/*"/></report>
  </xsl:template>
  <xsl:template match="/patients/*">
    <row who="{name()}" dx="{diagnosis}"/>
  </xsl:template>
</xsl:stylesheet>`)
	for _, patients := range []int{100, 1000} {
		d, h, p := mustHospital(b, patients, 0)
		pm, err := p.Evaluate(d, h, "beaufort")
		if err != nil {
			b.Fatal(err)
		}
		sec := qfilter.ForPerms(pm)
		b.Run(fmt.Sprintf("filtered/patients=%d", patients), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sheet.Transform(d, nil, sec); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("view-then-transform/patients=%d", patients), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v := view.Materialize(d, pm)
				if _, err := sheet.Transform(v.Doc, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
