module securexml

go 1.22
