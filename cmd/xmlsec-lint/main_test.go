package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"securexml/internal/core"
	"securexml/internal/findings"
	"securexml/internal/policy"
)

func TestPaperPolicyExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-paper"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q, stdout %q", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "no findings") {
		t.Errorf("stdout: %q", out.String())
	}
}

// snapshotWith writes a database snapshot seeded with the paper policy plus
// extra rules, and returns its path.
func snapshotWith(t *testing.T, extra ...policy.Rule) string {
	t.Helper()
	db := core.New()
	if err := db.LoadXMLString("<patients/>"); err != nil {
		t.Fatal(err)
	}
	seedPaperSubjectsAndRules(t, db)
	for _, r := range extra {
		if err := db.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "db.snapshot")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func seedPaperSubjectsAndRules(t *testing.T, db *core.Database) {
	t.Helper()
	for _, role := range [][]string{{"staff"}, {"secretary", "staff"}, {"doctor", "staff"}, {"epidemiologist", "staff"}, {"patient"}} {
		if err := db.AddRole(role[0], role[1:]...); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range [][2]string{
		{"beaufort", "secretary"}, {"laporte", "doctor"}, {"richard", "epidemiologist"},
		{"robert", "patient"}, {"franck", "patient"},
	} {
		if err := db.AddUser(u[0], u[1]); err != nil {
			t.Fatal(err)
		}
	}
	h := db.Hierarchy()
	pol, err := policy.PaperPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range pol.Rules() {
		if err := db.AddRule(*r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCleanSnapshotExitsZero(t *testing.T) {
	path := snapshotWith(t)
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q, stdout %q", code, errOut.String(), out.String())
	}
}

func TestBrokenSnapshotWarnsAndExitsOne(t *testing.T) {
	path := snapshotWith(t, policy.Rule{
		Effect: policy.Accept, Privilege: policy.Read,
		Path: "//diagnosis/node()", Subject: "secretary", Priority: 22,
	})
	var out, errOut bytes.Buffer
	code := run([]string{"-json", path}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, stderr %q, stdout %q", code, errOut.String(), out.String())
	}
	var rep struct {
		Findings []struct {
			Code     string `json:"code"`
			Priority int64  `json:"priority"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("JSON output: %v\n%s", err, out.String())
	}
	codes := map[string]bool{}
	for _, f := range rep.Findings {
		codes[f.Code] = true
	}
	if !codes["dead-rule"] || !codes["conflict-overlap"] {
		t.Errorf("findings: %+v", rep.Findings)
	}
}

// TestJSONIsCanonicalFindingsSchema asserts -json emits exactly the shared
// findings schema (internal/findings) that xmlsec-vet also emits: the
// output strict-decodes into findings.Report with no unknown fields.
func TestJSONIsCanonicalFindingsSchema(t *testing.T) {
	path := snapshotWith(t, policy.Rule{
		Effect: policy.Accept, Privilege: policy.Read,
		Path: "//diagnosis/node()", Subject: "secretary", Priority: 22,
	})
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out.Bytes()))
	dec.DisallowUnknownFields()
	var rep findings.Report
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("output is not the canonical findings schema: %v\n%s", err, out.String())
	}
	if rep.Tool != "xmlsec-lint" {
		t.Errorf("tool = %q, want xmlsec-lint", rep.Tool)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no findings decoded")
	}
	for _, f := range rep.Findings {
		if f.Tool != "xmlsec-lint" || f.Pass != "policy" || f.Code == "" || f.Rule == "" {
			t.Errorf("finding missing canonical anchors: %+v", f)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 3 {
		t.Errorf("no args: exit %d", code)
	}
	if code := run([]string{"/nonexistent/snapshot"}, &out, &errOut); code != 3 {
		t.Errorf("missing file: exit %d", code)
	}
	if code := run([]string{"-paper", "extra"}, &out, &errOut); code != 3 {
		t.Errorf("-paper with arg: exit %d", code)
	}
}
