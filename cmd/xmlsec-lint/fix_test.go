package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"securexml/internal/findings"
	"securexml/internal/policy"
)

// TestFixDryRunReportsRepairs: -fix on a faulty snapshot leaves the file
// untouched but emits validated repairs in both text and JSON output.
func TestFixDryRunReportsRepairs(t *testing.T) {
	path := snapshotWith(t, policy.Rule{
		Effect: policy.Accept, Privilege: policy.Read,
		Path: "//diagnosis/node()", Subject: "secretary", Priority: 22,
	})
	var out, errOut bytes.Buffer
	if code := run([]string{"-fix", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, stderr %q, stdout %q", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "repair  conflict-overlap rule@22") {
		t.Errorf("text output missing repair line:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-json", "-fix", path}, &out, &errOut); code != 1 {
		t.Fatalf("json exit %d, stderr %q", code, errOut.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out.Bytes()))
	dec.DisallowUnknownFields()
	var rep findings.Report
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("output is not the canonical findings schema: %v\n%s", err, out.String())
	}
	if len(rep.Repairs) == 0 {
		t.Fatal("no repairs in JSON output")
	}
	for _, r := range rep.Repairs {
		if !r.Validated || len(r.Edits) == 0 && r.Distance != 0 {
			t.Errorf("unvalidated or empty repair offered: %+v", r)
		}
	}
}

// TestFixWriteRepairsSnapshotInPlace: -fix -write rewrites the snapshot so
// that a re-lint of the same file comes back clean, and a second
// -fix -write run is a no-op.
func TestFixWriteRepairsSnapshotInPlace(t *testing.T) {
	path := snapshotWith(t, policy.Rule{
		Effect: policy.Accept, Privilege: policy.Read,
		Path: "//diagnosis/node()", Subject: "secretary", Priority: 22,
	})
	var out, errOut bytes.Buffer
	run([]string{"-fix", "-write", path}, &out, &errOut)
	if !strings.Contains(errOut.String(), "applied") {
		t.Fatalf("expected applied note on stderr, got %q", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("re-lint after -fix -write: exit %d\n%s", code, out.String())
	}

	// Idempotence: a clean snapshot is left alone.
	errOut.Reset()
	if code := run([]string{"-fix", "-write", path}, &out, &errOut); code != 0 {
		t.Fatalf("second -fix -write: exit %d", code)
	}
	if strings.Contains(errOut.String(), "applied") {
		t.Errorf("second -fix -write rewrote a clean snapshot: %q", errOut.String())
	}
}

// TestScenarioGenerateAndFix exercises the CI gate flow end to end:
// generate a seeded faulty corpus with -emit, repair the emitted snapshot
// with -fix -write, and verify the re-lint is clean.
func TestScenarioGenerateAndFix(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "acl.snapshot")
	var out, errOut bytes.Buffer
	code := run([]string{"-scenario", "acl", "-rules", "60", "-faults", "4", "-seed", "9", "-emit", snap}, &out, &errOut)
	if code == 0 || code == 3 {
		t.Fatalf("faulty corpus should lint dirty: exit %d, stderr %q", code, errOut.String())
	}

	out.Reset()
	errOut.Reset()
	run([]string{"-fix", "-write", snap}, &out, &errOut)
	if !strings.Contains(errOut.String(), "applied") {
		t.Fatalf("no repairs applied to faulty corpus: %q", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{snap}, &out, &errOut); code != 0 {
		t.Fatalf("emitted corpus not clean after -fix -write: exit %d\n%s", code, out.String())
	}
}

// TestScenarioCleanExitsZero: an unfaulted corpus lints clean for every
// shape, straight from the generator.
func TestScenarioCleanExitsZero(t *testing.T) {
	for _, shape := range []string{"acl", "rbac", "rebac", "hospital"} {
		var out, errOut bytes.Buffer
		if code := run([]string{"-scenario", shape, "-rules", "40", "-seed", "2"}, &out, &errOut); code != 0 {
			t.Errorf("%s: exit %d\n%s%s", shape, code, errOut.String(), out.String())
		}
	}
}

func TestFlagUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-write", "x"}, &out, &errOut); code != 3 {
		t.Errorf("-write without -fix: exit %d", code)
	}
	if code := run([]string{"-fix", "-write", "-paper"}, &out, &errOut); code != 3 {
		t.Errorf("-fix -write -paper: exit %d", code)
	}
	if code := run([]string{"-scenario", "acl", "-fix", "-write"}, &out, &errOut); code != 3 {
		t.Errorf("-scenario with -write: exit %d", code)
	}
	if code := run([]string{"-scenario", "nope"}, &out, &errOut); code != 3 {
		t.Errorf("unknown shape: exit %d", code)
	}
	if code := run([]string{"-scenario", "acl", "-paper"}, &out, &errOut); code != 3 {
		t.Errorf("-scenario with -paper: exit %d", code)
	}
}
