// Command xmlsec-lint statically analyzes a security policy — without any
// document — and reports dead rules, accept/deny reopenings, write grants
// that can never be exercised, and covert-channel hazards (§2.2). It is
// the CI gate for policy changes: exit codes reflect the worst finding.
//
// Usage:
//
//	xmlsec-lint [-json] <snapshot-file>   analyze a snapshot written by save/Save
//	xmlsec-lint [-json] -paper            analyze the paper's 12-rule policy
//
// Exit codes: 0 no findings, 1 warnings only, 2 errors, 3 usage or load
// failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"securexml/internal/policy"
	"securexml/internal/policyanalysis"
	"securexml/internal/storage"
	"securexml/internal/subject"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xmlsec-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	paper := fs.Bool("paper", false, "analyze the paper's 12-rule policy instead of a snapshot")
	if err := fs.Parse(args); err != nil {
		return 3
	}

	var rep *policyanalysis.Report
	switch {
	case *paper:
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "xmlsec-lint: -paper takes no snapshot argument")
			return 3
		}
		h := subject.PaperHierarchy()
		pol, err := policy.PaperPolicy(h)
		if err != nil {
			fmt.Fprintf(stderr, "xmlsec-lint: %v\n", err)
			return 3
		}
		rep = policyanalysis.Analyze(h, pol)
	case fs.NArg() == 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "xmlsec-lint: %v\n", err)
			return 3
		}
		snap, err := storage.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "xmlsec-lint: %v\n", err)
			return 3
		}
		rep = policyanalysis.AnalyzeRules(snap.Subjects, snap.Rules)
	default:
		fmt.Fprintln(stderr, "usage: xmlsec-lint [-json] <snapshot-file> | xmlsec-lint [-json] -paper")
		return 3
	}

	if *asJSON {
		// -json emits the canonical findings schema shared with xmlsec-vet
		// (internal/findings), not the internal policyanalysis report shape.
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep.Canonical()); err != nil {
			fmt.Fprintf(stderr, "xmlsec-lint: %v\n", err)
			return 3
		}
	} else {
		io.WriteString(stdout, rep.Text())
	}

	switch {
	case rep.HasErrors():
		return 2
	case rep.HasWarnings():
		return 1
	default:
		return 0
	}
}
