// Command xmlsec-lint statically analyzes a security policy — without any
// document — and reports dead rules, accept/deny reopenings, priority
// collisions, write grants that can never be exercised, and covert-channel
// hazards (§2.2). It is the CI gate for policy changes: exit codes reflect
// the worst finding.
//
// With -fix it additionally synthesizes minimal candidate repairs (delete
// rule, flip effect, renumber priority, narrow path) for every repairable
// finding, each validated by re-analysis and — when the snapshot carries a
// document — differentially classified as semantics-preserving or
// semantics-changing. -fix alone is a dry run; -fix -write applies the
// best repair per finding and rewrites the snapshot in place, iterating
// until no repairable finding remains. Rewriting a clean snapshot is a
// no-op.
//
// With -scenario it generates a seeded corpus (internal/scenario) instead
// of loading a snapshot: -rules scales it, -faults plants known-repairable
// defects, -seed fixes the generator, and -emit saves the generated
// snapshot for later -fix -write runs.
//
// Usage:
//
//	xmlsec-lint [-json] [-fix [-write]] <snapshot-file>
//	xmlsec-lint [-json] [-fix] -paper
//	xmlsec-lint [-json] [-fix] -scenario <shape> [-rules N] [-faults N] [-seed N] [-emit FILE]
//
// Exit codes: 0 no findings, 1 warnings only, 2 errors, 3 usage or load
// failure. With -fix -write the exit code reflects the post-repair state.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"securexml/internal/findings"
	"securexml/internal/policy"
	"securexml/internal/policyanalysis"
	"securexml/internal/scenario"
	"securexml/internal/storage"
	"securexml/internal/subject"
	"securexml/internal/xmltree"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xmlsec-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the report as JSON (shared findings schema)")
	paper := fs.Bool("paper", false, "analyze the paper's 12-rule policy instead of a snapshot")
	fix := fs.Bool("fix", false, "synthesize validated minimal repairs for repairable findings (dry run)")
	write := fs.Bool("write", false, "with -fix: apply best repairs and rewrite the snapshot file in place")
	shape := fs.String("scenario", "", "generate and analyze a corpus of this shape: "+strings.Join(scenario.Shapes(), "|"))
	nrules := fs.Int("rules", 100, "with -scenario: approximate rule count of the generated corpus")
	nfaults := fs.Int("faults", 0, "with -scenario: number of seeded repairable defects")
	seed := fs.Int64("seed", 1, "with -scenario: generator seed")
	emit := fs.String("emit", "", "with -scenario: write the generated corpus snapshot to this file")
	fs.Usage = func() {
		fmt.Fprintf(stderr, `usage:
  xmlsec-lint [-json] [-fix [-write]] <snapshot-file>
  xmlsec-lint [-json] [-fix] -paper
  xmlsec-lint [-json] [-fix] -scenario <shape> [-rules N] [-faults N] [-seed N] [-emit FILE]

Exit codes: 0 no findings, 1 warnings only, 2 errors, 3 usage or load
failure. With -fix -write the exit code reflects the post-repair state.

Flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 3
	}
	if *write && !*fix {
		fmt.Fprintln(stderr, "xmlsec-lint: -write requires -fix")
		return 3
	}

	// Resolve the policy source: scenario generator, paper policy, or a
	// snapshot file. doc is nil when the source carries no document.
	var (
		doc        *xmltree.Document
		h          *subject.Hierarchy
		rules      []policy.Rule
		snapFile   string
		schemeName = "fracpath"
	)
	switch {
	case *shape != "":
		if *paper || fs.NArg() != 0 {
			fmt.Fprintln(stderr, "xmlsec-lint: -scenario excludes -paper and snapshot arguments")
			return 3
		}
		if *write {
			fmt.Fprintln(stderr, "xmlsec-lint: -write needs a snapshot file; use -emit, then -fix -write on the emitted file")
			return 3
		}
		c, err := scenario.GenerateCorpus(scenario.CorpusConfig{
			Shape: *shape, Rules: *nrules, Seed: *seed, Faults: *nfaults,
		})
		if err != nil {
			fmt.Fprintf(stderr, "xmlsec-lint: %v\n", err)
			return 3
		}
		if *emit != "" {
			f, err := os.Create(*emit)
			if err != nil {
				fmt.Fprintf(stderr, "xmlsec-lint: %v\n", err)
				return 3
			}
			err = storage.Write(f, c.Snapshot())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(stderr, "xmlsec-lint: %v\n", err)
				return 3
			}
		}
		doc, h, rules = c.Doc, c.Hierarchy, c.Rules
	case *paper:
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "xmlsec-lint: -paper takes no snapshot argument")
			return 3
		}
		if *write {
			fmt.Fprintln(stderr, "xmlsec-lint: -write needs a snapshot file argument")
			return 3
		}
		h = subject.PaperHierarchy()
		pol, err := policy.PaperPolicy(h)
		if err != nil {
			fmt.Fprintf(stderr, "xmlsec-lint: %v\n", err)
			return 3
		}
		for _, r := range pol.Rules() {
			rules = append(rules, *r)
		}
	case fs.NArg() == 1:
		snapFile = fs.Arg(0)
		f, err := os.Open(snapFile)
		if err != nil {
			fmt.Fprintf(stderr, "xmlsec-lint: %v\n", err)
			return 3
		}
		snap, err := storage.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "xmlsec-lint: %v\n", err)
			return 3
		}
		doc, h, rules, schemeName = snap.Doc, snap.Subjects, snap.Rules, snap.SchemeName
	default:
		fs.Usage()
		return 3
	}

	var out *findings.Report
	switch {
	case *fix && *write:
		fixed, applied, final := policyanalysis.Fix(doc, h, rules)
		if len(applied) > 0 {
			f, err := os.Create(snapFile)
			if err != nil {
				fmt.Fprintf(stderr, "xmlsec-lint: %v\n", err)
				return 3
			}
			err = storage.Write(f, &storage.Snapshot{
				SchemeName: schemeName, Doc: doc, Subjects: h, Rules: fixed,
			})
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(stderr, "xmlsec-lint: %v\n", err)
				return 3
			}
			fmt.Fprintf(stderr, "xmlsec-lint: applied %d repair(s), rewrote %s\n", len(applied), snapFile)
		}
		out = final.Canonical()
	case *fix:
		out = policyanalysis.PlanRepairs(doc, h, rules).Canonical()
	default:
		out = policyanalysis.AnalyzeRules(h, rules).Canonical()
	}

	if *asJSON {
		// -json emits the canonical findings schema shared with xmlsec-vet
		// (internal/findings), not the internal policyanalysis report shape.
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "xmlsec-lint: %v\n", err)
			return 3
		}
	} else {
		io.WriteString(stdout, out.Text())
	}
	return out.ExitCode()
}
