// Command xmlsec-server serves a secure XML database over HTTP (see
// internal/server for the endpoints). Identification is HTTP Basic Auth
// username only — put a real authenticator in front for anything beyond
// demos.
//
// Usage:
//
//	xmlsec-server                      # paper scenario on :8080
//	xmlsec-server -addr :9090
//	xmlsec-server -snapshot db.sxml    # serve a restored snapshot
//	xmlsec-server -pprof               # also expose /debug/pprof/
//	xmlsec-server -accesslog access.jsonl
//	xmlsec-server -warm 4              # pre-materialize all views, 4 workers
//
// Telemetry is always on: Prometheus text on /metrics, an expvar snapshot
// on /debug/vars, and a structured JSON access log (stderr by default,
// -accesslog off to silence). Every request is traced into a bounded
// in-memory ring: GET /traces lists recent summaries, GET /trace/{id}
// returns the full span tree, and -slowtrace sets the latency above
// which whole trees are logged through the access logger.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"securexml/internal/core"
	"securexml/internal/scenario"
	"securexml/internal/server"
)

// attachJournal opens (or creates) the append-only command log and hooks
// it into the database, continuing from seqStart.
func attachJournal(db *core.Database, path string, seqStart uint64) error {
	if path == "" {
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	db.AttachJournal(f, seqStart)
	fmt.Printf("journaling to %s (from seq %d)\n", path, seqStart)
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	snapshot := flag.String("snapshot", "", "serve a database restored from this snapshot file")
	journalPath := flag.String("journal", "", "append executed modifications to this command log")
	recover := flag.Bool("recover", false, "replay the journal on top of the snapshot before serving")
	pprof := flag.Bool("pprof", false, "expose runtime profiles under /debug/pprof/")
	accessLog := flag.String("accesslog", "stderr", `structured access log: "stderr", "off", or a file path`)
	warm := flag.Int("warm", 0, "pre-materialize every user's view at startup through this many workers (0 = off)")
	slowTrace := flag.Duration("slowtrace", 500*time.Millisecond, "log the full span tree of requests slower than this (0 = off)")
	tier := flag.String("tier", "auto", `pin /query and /value to one read-ladder tier: "rewrite", "qfilter", "view" or "auto"`)
	flag.Parse()

	forcedTier, err := core.ParseTier(*tier)
	if err != nil {
		fatal(err)
	}

	var db *core.Database
	if *snapshot != "" {
		f, err := os.Open(*snapshot)
		if err != nil {
			fatal(err)
		}
		var seqStart uint64
		if *recover {
			if *journalPath == "" {
				fatal(fmt.Errorf("-recover requires -journal"))
			}
			jf, err := os.Open(*journalPath)
			if err != nil {
				fatal(err)
			}
			db, seqStart, err = core.Recover(f, jf)
			jf.Close()
			f.Close()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("recovered %s + %s (seq %d)\n", *snapshot, *journalPath, seqStart)
		} else {
			db, err = core.Open(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("restored %s\n", *snapshot)
		}
		if err := attachJournal(db, *journalPath, seqStart); err != nil {
			fatal(err)
		}
	} else {
		var err error
		db, err = scenario.New()
		if err != nil {
			fatal(err)
		}
		fmt.Println("serving the paper's hospital scenario")
		fmt.Println("users: beaufort, laporte, richard, robert, franck (basic auth, any password)")
		if err := attachJournal(db, *journalPath, 0); err != nil {
			fatal(err)
		}
	}
	opts := []server.Option{server.WithSlowTraceThreshold(*slowTrace)}
	if forcedTier != core.TierAuto {
		opts = append(opts, server.WithForcedTier(forcedTier))
		fmt.Printf("read ladder pinned to tier %s\n", forcedTier)
	}
	if *pprof {
		opts = append(opts, server.WithPprof())
		fmt.Println("pprof enabled on /debug/pprof/")
	}
	switch *accessLog {
	case "off":
	case "stderr":
		opts = append(opts, server.WithAccessLog(os.Stderr))
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, server.WithAccessLog(f))
		fmt.Printf("access log -> %s\n", *accessLog)
	}
	if *warm > 0 {
		start := time.Now()
		n, err := db.WarmSessions(context.Background(), nil, *warm)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("warmed %d user views in %s (%d workers)\n", n, time.Since(start).Round(time.Millisecond), *warm)
	}
	st := db.Stats()
	fmt.Printf("listening on %s (%d nodes, %d rules, %d users); metrics on /metrics\n", *addr, st.Nodes, st.Rules, st.Users)
	if err := http.ListenAndServe(*addr, server.New(db, opts...)); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmlsec-server:", err)
	os.Exit(1)
}
