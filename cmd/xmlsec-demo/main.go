// Command xmlsec-demo reproduces every figure and worked example of the
// paper on stdout (experiments F1–F3 and E1–E8 of DESIGN.md).
//
// Usage:
//
//	xmlsec-demo            # run everything
//	xmlsec-demo -fig 1     # one figure (1, 2 or 3)
//	xmlsec-demo -example views   # one example section
//
// Sections: rename, update, append, remove (the §3.4 XUpdate examples),
// policy (axiom 13), views (§4.4.1), covert (§2.2), writes (§4.4.2),
// logic (the Horn-clause axioms on the Datalog engine), and xslt (the §5
// security processor).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"securexml/internal/access"
	"securexml/internal/baseline"
	"securexml/internal/core"
	"securexml/internal/logicmodel"
	"securexml/internal/policy"
	"securexml/internal/qfilter"
	"securexml/internal/subject"
	"securexml/internal/view"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
	"securexml/internal/xslt"
	"securexml/internal/xupdate"
)

const medXML = `<patients><franck><service>otolaryngology</service><diagnosis>tonsillitis</diagnosis></franck><robert><service>pneumology</service><diagnosis>pneumonia</diagnosis></robert></patients>`

func main() {
	fig := flag.Int("fig", 0, "reproduce one figure (1, 2 or 3)")
	example := flag.String("example", "", "reproduce one example section")
	flag.Parse()

	switch {
	case *fig != 0:
		if err := runFigure(*fig); err != nil {
			fail(err)
		}
	case *example != "":
		if err := runExample(*example); err != nil {
			fail(err)
		}
	default:
		for _, f := range []int{2, 3, 1} {
			if err := runFigure(f); err != nil {
				fail(err)
			}
		}
		for _, e := range []string{"rename", "update", "append", "remove", "policy", "views", "covert", "writes", "logic", "xslt"} {
			if err := runExample(e); err != nil {
				fail(err)
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xmlsec-demo:", err)
	os.Exit(1)
}

func header(title string) {
	fmt.Println()
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 72))
}

func paperEnv() (*xmltree.Document, *subject.Hierarchy, *policy.Policy, error) {
	d, err := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	if err != nil {
		return nil, nil, nil, err
	}
	h := subject.PaperHierarchy()
	p, err := policy.PaperPolicy(h)
	if err != nil {
		return nil, nil, nil, err
	}
	return d, h, p, nil
}

func runFigure(n int) error {
	switch n {
	case 1:
		return fig1()
	case 2:
		return fig2()
	case 3:
		return fig3()
	default:
		return fmt.Errorf("unknown figure %d (have 1, 2, 3)", n)
	}
}

// fig2 prints the sample database of Fig. 2: the node facts (set F of
// axiom 1) and derived child facts of §3.3.
func fig2() error {
	header("Fig. 2 — the sample XML database (node facts and derived geometry)")
	d, err := xmltree.ParseString(medXML, xmltree.ParseOptions{})
	if err != nil {
		return err
	}
	fmt.Println("Document tree (identifier, label):")
	fmt.Print(d.Sketch())
	fmt.Println("\nDerived child(x, y) facts (from identifiers alone):")
	for _, n := range d.Nodes() {
		if p := n.Parent(); p != nil {
			fmt.Printf("  child(%s, %s)\n", n.ID(), p.ID())
		}
	}
	return nil
}

// fig3 prints the subject hierarchy and its isa closure (axioms 10–12).
func fig3() error {
	header("Fig. 3 — subject hierarchy and the isa closure (axioms 10-12)")
	h := subject.PaperHierarchy()
	fmt.Println("Roles:", strings.Join(h.Roles(), ", "))
	fmt.Println("Users:", strings.Join(h.Users(), ", "))
	fmt.Println("\nReflexive-transitive closure (user rows only):")
	for _, u := range h.Users() {
		fmt.Printf("  isa(%s): %s\n", u, strings.Join(h.Ancestors(u), ", "))
	}
	return nil
}

// fig1 reproduces the view access control figure: read vs position.
func fig1() error {
	header("Fig. 1 — view access control: read vs position privileges")
	d, err := xmltree.ParseString(
		`<patients><robert><diagnosis>pneumonia</diagnosis></robert></patients>`,
		xmltree.ParseOptions{})
	if err != nil {
		return err
	}
	h := subject.NewHierarchy()
	if err := h.AddUser("s"); err != nil {
		return err
	}
	p := policy.New()
	for _, step := range []error{
		p.Grant(h, policy.Read, "/descendant-or-self::node()", "s"),
		p.Revoke(h, policy.Read, "/patients/robert", "s"),
		p.Grant(h, policy.Position, "/patients/robert", "s"),
	} {
		if step != nil {
			return step
		}
	}
	fmt.Println("Source tree:")
	fmt.Print(d.Sketch())
	pm, err := p.Evaluate(d, h, "s")
	if err != nil {
		return err
	}
	v := view.Materialize(d, pm)
	fmt.Println("\nUser s holds read everywhere except /patients/robert (position only).")
	fmt.Println("View for s — the patient's name is RESTRICTED, the structure is preserved:")
	fmt.Print(v.Doc.Sketch())
	return nil
}

func runExample(name string) error {
	switch name {
	case "rename":
		return xupdateExample("§3.4.1 xupdate:rename — //service becomes department",
			&xupdate.Op{Kind: xupdate.Rename, Select: "//service", NewValue: "department"})
	case "update":
		return xupdateExample("§3.4.1 xupdate:update — franck's diagnosis becomes pharyngitis",
			&xupdate.Op{Kind: xupdate.Update, Select: "/patients/franck/diagnosis", NewValue: "pharyngitis"})
	case "append":
		op, err := xupdate.NewOp(xupdate.Append, "/patients",
			"<albert><service>cardiology</service><diagnosis/></albert>")
		if err != nil {
			return err
		}
		return xupdateExample("§3.4.2 xupdate:append — albert's record under /patients", op)
	case "remove":
		return xupdateExample("§3.4.3 xupdate:remove — franck's diagnosis subtree",
			&xupdate.Op{Kind: xupdate.Remove, Select: "/patients/franck/diagnosis"})
	case "policy":
		return policyExample()
	case "views":
		return viewsExample()
	case "covert":
		return covertExample()
	case "writes":
		return writesExample()
	case "logic":
		return logicExample()
	case "xslt":
		return xsltExample()
	default:
		return fmt.Errorf("unknown example %q", name)
	}
}

// xupdateExample demonstrates the §3.4 operations through a core session
// under a fully-privileged "editor" user: on a view that shows every node,
// the secured semantics of axioms 18–25 reduce to the unsecured axioms
// 2–9, so the output matches the paper while the write stays mediated.
func xupdateExample(title string, op *xupdate.Op) error {
	header(title)
	db := core.New()
	if err := db.LoadXMLString(medXML); err != nil {
		return err
	}
	if err := db.AddUser("editor"); err != nil {
		return err
	}
	for _, priv := range policy.Privileges {
		if err := db.Grant(priv, "/descendant-or-self::node()", "editor"); err != nil {
			return err
		}
	}
	s, err := db.Session("editor")
	if err != nil {
		return err
	}
	fmt.Println("Before:")
	fmt.Print(db.SourceSketch())
	res, err := s.Update(op)
	if err != nil {
		return err
	}
	fmt.Printf("\n%s select=%s: selected=%d applied=%d created=%d removed=%d\n",
		op.Kind, op.Select, res.Selected, res.Applied, res.Created, res.Removed)
	fmt.Println("\nAfter (identifiers of surviving nodes unchanged — §3.1):")
	fmt.Print(db.SourceSketch())
	return nil
}

func policyExample() error {
	header("Axiom 13 — the hospital security policy")
	_, h, p, err := paperEnv()
	if err != nil {
		return err
	}
	for i, r := range p.Rules() {
		fmt.Printf("%2d. %s\n", i+1, r)
	}
	fmt.Println("\nPer-user privilege summary on the Fig. 2 database (axiom 14):")
	d, _, _, err := paperEnv()
	if err != nil {
		return err
	}
	for _, user := range h.Users() {
		pm, err := p.Evaluate(d, h, user)
		if err != nil {
			return err
		}
		counts := map[policy.Privilege]int{}
		for _, n := range d.Nodes() {
			for _, priv := range policy.Privileges {
				if pm.Has(n, priv) {
					counts[priv]++
				}
			}
		}
		fmt.Printf("  %-9s read=%-2d position=%-2d insert=%-2d update=%-2d delete=%-2d\n",
			user, counts[policy.Read], counts[policy.Position], counts[policy.Insert],
			counts[policy.Update], counts[policy.Delete])
	}
	return nil
}

func viewsExample() error {
	header("§4.4.1 — the views each subject is permitted to see")
	d, h, p, err := paperEnv()
	if err != nil {
		return err
	}
	for _, user := range []string{"beaufort", "robert", "richard", "laporte"} {
		pm, err := p.Evaluate(d, h, user)
		if err != nil {
			return err
		}
		v := view.Materialize(d, pm)
		fmt.Printf("\nView for %s (restricted=%d, hidden=%d):\n", user, v.Restricted, v.Hidden)
		fmt.Print(v.Doc.XML())
	}
	return nil
}

func covertExample() error {
	header("§2.2 — the covert channel: baseline [10] vs this paper's model")
	src := `<employees><employee><name>ann</name><salary>4000</salary></employee><employee><name>bob</name><salary>3500</salary></employee><employee><name>cid</name><salary>2000</salary></employee></employees>`
	mk := func() (*xmltree.Document, *subject.Hierarchy, *policy.Policy, error) {
		d, err := xmltree.ParseString(src, xmltree.ParseOptions{})
		if err != nil {
			return nil, nil, nil, err
		}
		h := subject.NewHierarchy()
		if err := h.AddUser("user_B"); err != nil {
			return nil, nil, nil, err
		}
		p := policy.New()
		if err := p.Grant(h, policy.Update, "//salary/node()", "user_B"); err != nil {
			return nil, nil, nil, err
		}
		if err := p.Grant(h, policy.Read, "/employees", "user_B"); err != nil {
			return nil, nil, nil, err
		}
		return d, h, p, nil
	}
	probe := &xupdate.Op{Kind: xupdate.Update, Select: "//employee[salary > 3000]/salary", NewValue: "9999"}
	fmt.Println("user_B holds update on salaries but read on nothing below /employees.")
	fmt.Printf("Probe: %s select=%q\n\n", probe.Kind, probe.Select)

	d, h, p, err := mk()
	if err != nil {
		return err
	}
	bres, err := baseline.Execute(d, h, p, "user_B", probe)
	if err != nil {
		return err
	}
	fmt.Printf("Baseline [10] (writes on source):  selected=%d applied=%d  -> LEAK: %d employees earn > 3000\n",
		bres.Selected, bres.Applied, bres.Applied)

	d2, h2, p2, err := mk()
	if err != nil {
		return err
	}
	sres, _, err := access.Execute(d2, h2, p2, "user_B", probe)
	if err != nil {
		return err
	}
	fmt.Printf("This model (writes on the view):   selected=%d applied=%d  -> nothing to learn\n",
		sres.Selected, sres.Applied)
	return nil
}

func writesExample() error {
	header("§4.4.2 — write access controls on views")
	d, h, p, err := paperEnv()
	if err != nil {
		return err
	}
	show := func(user string, op *xupdate.Op) error {
		res, _, err := access.Execute(d, h, p, user, op)
		if err != nil {
			return err
		}
		outcome := "DENIED"
		if res.Applied > 0 {
			outcome = "applied"
		} else if res.Selected == 0 {
			outcome = "invisible (not in view)"
		}
		fmt.Printf("  %-9s %-22s select=%-38s -> %s (selected=%d applied=%d)\n",
			user, op.Kind, op.Select, outcome, res.Selected, res.Applied)
		return nil
	}
	steps := []struct {
		user string
		op   *xupdate.Op
	}{
		{"laporte", &xupdate.Op{Kind: xupdate.Update, Select: "/patients/franck/diagnosis", NewValue: "pharyngitis"}},
		{"beaufort", &xupdate.Op{Kind: xupdate.Update, Select: "/patients/franck/diagnosis", NewValue: "leak"}},
		{"beaufort", &xupdate.Op{Kind: xupdate.Rename, Select: "/patients/robert", NewValue: "roberto"}},
		{"robert", &xupdate.Op{Kind: xupdate.Remove, Select: "/patients/franck"}},
		{"laporte", &xupdate.Op{Kind: xupdate.Remove, Select: "//diagnosis/node()"}},
	}
	for _, s := range steps {
		if err := show(s.user, s.op); err != nil {
			return err
		}
	}
	fmt.Println("\nDatabase after the permitted operations:")
	fmt.Print(d.Sketch())
	return nil
}

func logicExample() error {
	header("§1/§5 — the axioms as Horn clauses on the Datalog engine")
	d, h, p, err := paperEnv()
	if err != nil {
		return err
	}
	m, err := logicmodel.Build(d, h, p, "beaufort")
	if err != nil {
		return err
	}
	fmt.Println("node_view facts derived for beaufort (secretary) by axioms 14-17:")
	facts := m.ViewFacts()
	for _, n := range d.Nodes() {
		if label, ok := facts[n.ID().String()]; ok {
			fmt.Printf("  node_view(%s, %q)\n", n.ID(), label)
		}
	}
	fmt.Println("\n(The property tests in internal/logicmodel check these facts equal")
	fmt.Println(" the native engines' output on randomized databases and policies.)")
	return nil
}

func xsltExample() error {
	header("§5 — the XSLT-based security processor (one stylesheet, per-user reports)")
	d, h, p, err := paperEnv()
	if err != nil {
		return err
	}
	sheet := xslt.MustParseStylesheet(`
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:template match="/">
    <report patients="{count(/patients/*)}"><xsl:apply-templates select="/patients/*"/></report>
  </xsl:template>
  <xsl:template match="/patients/*">
    <row who="{name()}" dx="{diagnosis}"/>
  </xsl:template>
</xsl:stylesheet>`)
	for _, user := range []string{"laporte", "beaufort", "richard", "robert"} {
		pm, err := p.Evaluate(d, h, user)
		if err != nil {
			return err
		}
		out, err := sheet.TransformString(d,
			xpathVars(user), qfilter.ForPerms(pm))
		if err != nil {
			return err
		}
		fmt.Printf("\nas %s:\n%s", user, out)
	}
	fmt.Println("\nThe stylesheet ran on the SOURCE document each time; the security")
	fmt.Println("filter made it observe exactly the user's authorized view (§5).")
	return nil
}

func xpathVars(user string) xpath.Vars {
	return xpath.Vars{"USER": xpath.String(user)}
}
