package main

// Golden-ish tests for the demo binary: every section must run cleanly and
// print the load-bearing facts of the paper artifact it reproduces.

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if errRun != nil {
		t.Fatalf("section failed: %v\noutput so far:\n%s", errRun, out)
	}
	return out
}

func TestFigures(t *testing.T) {
	cases := []struct {
		fig  int
		want []string
	}{
		{1, []string{"RESTRICTED", "pneumonia", "structure is preserved"}},
		{2, []string{"patients", "otolaryngology", "child(", "document"}},
		{3, []string{"isa(beaufort): beaufort, secretary, staff", "isa(robert): patient, robert"}},
	}
	for _, tc := range cases {
		out := capture(t, func() error { return runFigure(tc.fig) })
		for _, want := range tc.want {
			if !strings.Contains(out, want) {
				t.Errorf("figure %d output missing %q:\n%s", tc.fig, want, out)
			}
		}
	}
	if err := runFigure(9); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestExamples(t *testing.T) {
	cases := []struct {
		name string
		want []string
	}{
		{"rename", []string{"department", "selected=2 applied=2"}},
		{"update", []string{"pharyngitis"}},
		{"append", []string{"albert", "cardiology", "created=4"}},
		{"remove", []string{"removed=2"}},
		{"policy", []string{"rule(accept,read", "beaufort", "laporte", "read=12"}},
		{"views", []string{"RESTRICTED", "View for robert", "pneumonia"}},
		{"covert", []string{"LEAK: 2 employees", "selected=0 applied=0"}},
		{"writes", []string{"DENIED", "applied", "roberto"}},
		{"logic", []string{"node_view(", "RESTRICTED"}},
		{"xslt", []string{"as laporte", `dx="tonsillitis"`, `dx="RESTRICTED"`, `who="RESTRICTED"`}},
	}
	for _, tc := range cases {
		out := capture(t, func() error { return runExample(tc.name) })
		for _, want := range tc.want {
			if !strings.Contains(out, want) {
				t.Errorf("example %s output missing %q:\n%s", tc.name, want, out)
			}
		}
	}
	if err := runExample("nonsense"); err == nil {
		t.Error("unknown example accepted")
	}
}

// TestRemoveExampleLeavesNoDiagnosis pins the §3.4.3 post-state precisely.
func TestRemoveExampleLeavesNoDiagnosis(t *testing.T) {
	out := capture(t, func() error { return runExample("remove") })
	// After the op, franck must have no diagnosis line under his subtree in
	// the "After" sketch, while robert keeps his.
	after := out[strings.Index(out, "After"):]
	franckPart := after[strings.Index(after, "franck"):strings.Index(after, "robert")]
	if strings.Contains(franckPart, "diagnosis") {
		t.Errorf("franck still has a diagnosis after remove:\n%s", after)
	}
	robertPart := after[strings.Index(after, "robert"):]
	if !strings.Contains(robertPart, "diagnosis") {
		t.Errorf("robert lost his diagnosis:\n%s", after)
	}
}
