package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"securexml/internal/findings"
	"securexml/internal/srcanalysis"
)

// TestJSONIsCanonicalFindingsSchema proves -json emits exactly the shared
// internal/findings report schema (the same one xmlsec-lint emits): a
// strict decode with unknown fields disallowed must round-trip. The scan
// runs with an empty baseline so the report carries real findings — the
// intentionally unsecured demo call sites.
func TestJSONIsCanonicalFindingsSchema(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", "../..", "-json", "-baseline", "no-such-baseline.json"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, errb.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out.Bytes()))
	dec.DisallowUnknownFields()
	var rep findings.Report
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("output is not the canonical findings schema: %v\n%s", err, out.String())
	}
	if rep.Tool != "xmlsec-vet" {
		t.Errorf("tool = %q, want xmlsec-vet", rep.Tool)
	}
	if len(rep.Findings) == 0 {
		t.Error("expected findings without the committed baseline")
	}
	for _, f := range rep.Findings {
		if f.Tool != "xmlsec-vet" || f.Pass == "" || f.Code == "" || f.Pos == "" {
			t.Errorf("finding missing anchors: %+v", f)
		}
	}
}

// TestCommittedBaselineClean proves the repo scan is clean under the
// committed vet-baseline.json — the exact invariant make vet gates CI on.
func TestCommittedBaselineClean(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", "../.."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "no findings") {
		t.Errorf("unexpected report: %s", out.String())
	}
}

// TestListAndErrors covers -list and the usage/selection error paths.
func TestListAndErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit code = %d, want 0", code)
	}
	for _, name := range srcanalysis.Passes() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing pass %q", name)
		}
	}
	errb.Reset()
	if code := run([]string{"-C", "../..", "-passes", "nosuchpass"}, &out, &errb); code != 2 {
		t.Errorf("unknown pass exit code = %d, want 2", code)
	}
	if msg := errb.String(); !strings.Contains(msg, `unknown pass "nosuchpass"`) || !strings.Contains(msg, "-list") {
		t.Errorf("unknown pass error should name the pass and point at -list, got: %s", msg)
	}
	if code := run([]string{"stray-arg"}, &out, &errb); code != 3 {
		t.Errorf("stray argument exit code = %d, want 3", code)
	}
}

// TestUpdateBaseline proves -update-baseline regenerates the baseline from
// the live findings: starting from an empty file it reproduces entries
// covering everything the committed baseline suppresses (with placeholder
// justifications), and starting from the committed file it keeps the
// committed justifications. The committed vet-baseline.json itself is
// never touched.
func TestUpdateBaseline(t *testing.T) {
	tmp := filepath.Join(t.TempDir(), "baseline.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-C", "../..", "-baseline", tmp, "-update-baseline"}, &out, &errb); code != 0 {
		t.Fatalf("-update-baseline exit code = %d, want 0 (stderr: %s)", code, errb.String())
	}
	regen, err := srcanalysis.LoadBaseline(tmp)
	if err != nil {
		t.Fatalf("regenerated baseline does not load: %v", err)
	}
	committed, err := srcanalysis.LoadBaseline(filepath.Join("..", "..", "vet-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	type tuple struct{ pass, code, file, fn, key string }
	got := make(map[tuple]string)
	for _, e := range regen.Entries {
		if e.Justification != "TODO: justify or fix" {
			t.Errorf("fresh regeneration should use the placeholder justification, got %q", e.Justification)
		}
		got[tuple{e.Pass, e.Code, e.File, e.Function, e.Key}] = e.Justification
	}
	for _, e := range committed.Entries {
		if _, ok := got[tuple{e.Pass, e.Code, e.File, e.Function, e.Key}]; !ok {
			t.Errorf("regenerated baseline is missing committed entry %+v", e)
		}
	}

	// Rerunning against the committed file preserves its justifications.
	data, err := os.ReadFile(filepath.Join("..", "..", "vet-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-C", "../..", "-baseline", tmp, "-update-baseline"}, &out, &errb); code != 0 {
		t.Fatalf("second -update-baseline exit code = %d, want 0 (stderr: %s)", code, errb.String())
	}
	regen, err = srcanalysis.LoadBaseline(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range regen.Entries {
		if e.Justification == "TODO: justify or fix" {
			t.Errorf("committed justification lost for %s/%s key=%q", e.Pass, e.Code, e.Key)
		}
	}
	// And the regenerated file still gates a normal run cleanly.
	if code := run([]string{"-C", "../..", "-baseline", tmp}, &out, &errb); code != 0 {
		t.Errorf("scan under regenerated baseline exit code = %d, want 0 (stderr: %s)", code, errb.String())
	}
}
