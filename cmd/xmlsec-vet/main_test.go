package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"securexml/internal/findings"
	"securexml/internal/srcanalysis"
)

// TestJSONIsCanonicalFindingsSchema proves -json emits exactly the shared
// internal/findings report schema (the same one xmlsec-lint emits): a
// strict decode with unknown fields disallowed must round-trip. The scan
// runs with an empty baseline so the report carries real findings — the
// intentionally unsecured demo call sites.
func TestJSONIsCanonicalFindingsSchema(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", "../..", "-json", "-baseline", "no-such-baseline.json"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, errb.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out.Bytes()))
	dec.DisallowUnknownFields()
	var rep findings.Report
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("output is not the canonical findings schema: %v\n%s", err, out.String())
	}
	if rep.Tool != "xmlsec-vet" {
		t.Errorf("tool = %q, want xmlsec-vet", rep.Tool)
	}
	if len(rep.Findings) == 0 {
		t.Error("expected findings without the committed baseline")
	}
	for _, f := range rep.Findings {
		if f.Tool != "xmlsec-vet" || f.Pass == "" || f.Code == "" || f.Pos == "" {
			t.Errorf("finding missing anchors: %+v", f)
		}
	}
}

// TestCommittedBaselineClean proves the repo scan is clean under the
// committed vet-baseline.json — the exact invariant make vet gates CI on.
func TestCommittedBaselineClean(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", "../.."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "no findings") {
		t.Errorf("unexpected report: %s", out.String())
	}
}

// TestListAndErrors covers -list and the usage/selection error paths.
func TestListAndErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit code = %d, want 0", code)
	}
	for _, name := range srcanalysis.Passes() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing pass %q", name)
		}
	}
	if code := run([]string{"-C", "../..", "-passes", "nosuchpass"}, &out, &errb); code != 3 {
		t.Errorf("unknown pass exit code = %d, want 3", code)
	}
	if code := run([]string{"stray-arg"}, &out, &errb); code != 3 {
		t.Errorf("stray argument exit code = %d, want 3", code)
	}
}
