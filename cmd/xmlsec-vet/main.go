// Command xmlsec-vet statically proves that the Go source keeps the
// paper's access-control model closed: it type-checks the whole module
// (go/parser + go/types, stdlib only) and runs seven invariant passes —
// viewbypass (no raw xmltree access or unsecured executors outside the
// trusted core, axioms 15–25), privconst (privileges only from the named
// axiom-14 constants), obslabel (metric labels compile-time bounded, no
// §2.2 covert channel through /metrics), ctxflow (request contexts
// accepted and forwarded on the hot path), lockguard (mutex-guarded
// state only touched with its lock held or under a "callers hold"
// contract), cowdiscipline (shared cache values cloned before mutation)
// and snapshotimmut (Session.View snapshots are read-only outside the
// view layer).
//
// Usage:
//
//	xmlsec-vet [-json] [-C dir] [-baseline file] [-passes p1,p2]
//	xmlsec-vet -update-baseline [-C dir] [-baseline file]
//	xmlsec-vet -list
//
// Findings matched by the committed baseline file are suppressed and
// counted; stale baseline entries are errors. -json emits the canonical
// findings schema shared with xmlsec-lint (internal/findings).
// -update-baseline reruns all passes with an empty baseline and rewrites
// the baseline file from the surviving findings, keeping committed
// justifications; CI never runs it, so the committed file can only
// shrink.
//
// Exit codes: 0 no findings, 1 warnings only, 2 errors (including an
// unknown -passes name), 3 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"securexml/internal/srcanalysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xmlsec-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the report as JSON (canonical findings schema)")
	moduleDir := fs.String("C", ".", "module root to analyze")
	baselinePath := fs.String("baseline", "vet-baseline.json", "baseline file, relative to the module root (missing file = empty baseline)")
	passList := fs.String("passes", "", "comma-separated subset of passes to run (default: all)")
	update := fs.Bool("update-baseline", false, "rerun all passes and rewrite the baseline file from the current findings")
	list := fs.Bool("list", false, "list the registered passes and exit")
	if err := fs.Parse(args); err != nil {
		return 3
	}
	if *list {
		for _, name := range srcanalysis.Passes() {
			fmt.Fprintf(stdout, "%-14s %s\n", name, srcanalysis.PassDoc(name))
		}
		return 0
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: xmlsec-vet [-json] [-C dir] [-baseline file] [-passes p1,p2] | xmlsec-vet -update-baseline | xmlsec-vet -list")
		return 3
	}

	cfg := srcanalysis.Config{ModuleDir: *moduleDir}
	if *passList != "" && !*update { // -update-baseline regenerates from all passes
		cfg.Passes = strings.Split(*passList, ",")
		known := make(map[string]bool)
		for _, name := range srcanalysis.Passes() {
			known[name] = true
		}
		for _, name := range cfg.Passes {
			if !known[name] {
				fmt.Fprintf(stderr, "xmlsec-vet: unknown pass %q (xmlsec-vet -list shows the registered passes)\n", name)
				return 2
			}
		}
	}
	bp := *baselinePath
	if !filepath.IsAbs(bp) {
		bp = filepath.Join(*moduleDir, bp)
	}
	base, err := srcanalysis.LoadBaseline(bp)
	if err != nil {
		fmt.Fprintf(stderr, "xmlsec-vet: %v\n", err)
		return 3
	}
	prog, err := srcanalysis.Load(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "xmlsec-vet: %v\n", err)
		return 3
	}
	if *update {
		rep, err := prog.Run(cfg, &srcanalysis.Baseline{})
		if err != nil {
			fmt.Fprintf(stderr, "xmlsec-vet: %v\n", err)
			return 3
		}
		nb := srcanalysis.RegenerateBaseline(rep, base)
		if err := srcanalysis.SaveBaseline(bp, nb); err != nil {
			fmt.Fprintf(stderr, "xmlsec-vet: %v\n", err)
			return 3
		}
		fmt.Fprintf(stdout, "xmlsec-vet: wrote %d baseline entries to %s\n", len(nb.Entries), bp)
		return 0
	}
	rep, err := prog.Run(cfg, base)
	if err != nil {
		fmt.Fprintf(stderr, "xmlsec-vet: %v\n", err)
		return 3
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "xmlsec-vet: %v\n", err)
			return 3
		}
	} else {
		io.WriteString(stdout, rep.Text())
	}
	return rep.ExitCode()
}
