// Command xmlsec-vet statically proves that the Go source keeps the
// paper's access-control model closed: it type-checks the whole module
// (go/parser + go/types, stdlib only) and runs four invariant passes —
// viewbypass (no raw xmltree access or unsecured executors outside the
// trusted core, axioms 15–25), privconst (privileges only from the named
// axiom-14 constants), obslabel (metric labels compile-time bounded, no
// §2.2 covert channel through /metrics) and ctxflow (request contexts
// accepted and forwarded on the hot path).
//
// Usage:
//
//	xmlsec-vet [-json] [-C dir] [-baseline file] [-passes p1,p2]
//	xmlsec-vet -list
//
// Findings matched by the committed baseline file are suppressed and
// counted; stale baseline entries are errors. -json emits the canonical
// findings schema shared with xmlsec-lint (internal/findings).
//
// Exit codes: 0 no findings, 1 warnings only, 2 errors, 3 usage or load
// failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"securexml/internal/srcanalysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xmlsec-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the report as JSON (canonical findings schema)")
	moduleDir := fs.String("C", ".", "module root to analyze")
	baselinePath := fs.String("baseline", "vet-baseline.json", "baseline file, relative to the module root (missing file = empty baseline)")
	passList := fs.String("passes", "", "comma-separated subset of passes to run (default: all)")
	list := fs.Bool("list", false, "list the registered passes and exit")
	if err := fs.Parse(args); err != nil {
		return 3
	}
	if *list {
		for _, name := range srcanalysis.Passes() {
			fmt.Fprintf(stdout, "%-12s %s\n", name, srcanalysis.PassDoc(name))
		}
		return 0
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: xmlsec-vet [-json] [-C dir] [-baseline file] [-passes p1,p2] | xmlsec-vet -list")
		return 3
	}

	cfg := srcanalysis.Config{ModuleDir: *moduleDir}
	if *passList != "" {
		cfg.Passes = strings.Split(*passList, ",")
	}
	bp := *baselinePath
	if !filepath.IsAbs(bp) {
		bp = filepath.Join(*moduleDir, bp)
	}
	base, err := srcanalysis.LoadBaseline(bp)
	if err != nil {
		fmt.Fprintf(stderr, "xmlsec-vet: %v\n", err)
		return 3
	}
	prog, err := srcanalysis.Load(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "xmlsec-vet: %v\n", err)
		return 3
	}
	rep, err := prog.Run(cfg, base)
	if err != nil {
		fmt.Fprintf(stderr, "xmlsec-vet: %v\n", err)
		return 3
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "xmlsec-vet: %v\n", err)
			return 3
		}
	} else {
		io.WriteString(stdout, rep.Text())
	}
	return rep.ExitCode()
}
