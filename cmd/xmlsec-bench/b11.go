// Experiment B11 (EXPERIMENTS.md): incremental view maintenance vs full
// re-materialization. An administrator streams secured single-target
// XUpdate ops over the hospital document; after every applied op each
// staff user's cached view is patched in place by view.Maintainer and,
// separately, rebuilt from scratch (policy.Evaluate + view.Materialize).
// Both paths are timed per op per user and the patched view is verified
// node-for-node against the rebuild. Rows are emitted as BENCH_b11.json.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"securexml/internal/access"
	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/view"
	"securexml/internal/workload"
	"securexml/internal/xmltree"
)

const b11Schema = "securexml/bench-b11/v1"

type b11Row struct {
	Patients    int     `json:"patients"`
	Nodes       int     `json:"nodes"`
	Mix         string  `json:"mix"`
	Users       int     `json:"users"`
	Ops         int     `json:"ops"`
	FullNsPerOp float64 `json:"full_ns_per_op"`
	IncNsPerOp  float64 `json:"inc_ns_per_op"`
	Speedup     float64 `json:"speedup"`
	Fallbacks   int     `json:"fallbacks"`
}

type b11Report struct {
	Schema string   `json:"schema"`
	Quick  bool     `json:"quick"`
	Rows   []b11Row `json:"rows"`
}

// b11Env builds the hospital environment plus an administrator who holds
// every privilege on every node, so the secured executor applies the
// generated ops without skips while the maintained users keep the plain
// paper policy.
func b11Env(patients int, seed int64) (*xmltree.Document, *subject.Hierarchy, *policy.Policy, error) {
	d, err := workload.Hospital(workload.HospitalConfig{Patients: patients, Seed: seed})
	if err != nil {
		return nil, nil, nil, err
	}
	h, err := workload.HospitalHierarchy(patients)
	if err != nil {
		return nil, nil, nil, err
	}
	p, err := workload.HospitalPolicy(h)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := h.AddRole("benchadmin"); err != nil {
		return nil, nil, nil, err
	}
	if err := h.AddUser("admin", "benchadmin"); err != nil {
		return nil, nil, nil, err
	}
	for i, priv := range policy.Privileges {
		err := p.Add(h, policy.Rule{
			Effect: policy.Accept, Privilege: priv,
			Path: "/descendant-or-self::node()", Subject: "benchadmin",
			Priority: int64(1000 + i),
		})
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return d, h, p, nil
}

// b11State is one maintained user: the incrementally patched view and the
// perms it is scored under.
type b11State struct {
	user string
	v    *view.View
	pm   *policy.Perms
	m    *view.Maintainer
}

func b11Mix(name string) workload.OpWeights {
	switch name {
	case "update-text":
		return workload.OpWeights{Update: 1}
	case "rename":
		return workload.OpWeights{Rename: 1}
	case "append":
		return workload.OpWeights{Append: 1}
	case "remove":
		return workload.OpWeights{Remove: 1}
	default:
		return workload.DefaultOpWeights
	}
}

func b11Run(patients, ops int, mix string) (b11Row, error) {
	row := b11Row{Patients: patients, Mix: mix, Ops: ops}
	d, h, p, err := b11Env(patients, 1)
	if err != nil {
		return row, err
	}
	row.Nodes = d.Len()

	users := []string{"beaufort", "laporte", "richard"}
	row.Users = len(users)
	states := make([]*b11State, 0, len(users))
	for _, u := range users {
		pm, err := p.Evaluate(d, h, u)
		if err != nil {
			return row, err
		}
		m, ok := view.NewMaintainer(p, h, u)
		if !ok {
			return row, fmt.Errorf("user %s: hospital policy is not chain-only", u)
		}
		states = append(states, &b11State{user: u, v: view.Materialize(d, pm), pm: pm, m: m})
	}

	stream := workload.OpStream(workload.OpConfig{Doc: d, Seed: 1, Weights: b11Mix(mix)})
	var incTotal, fullTotal time.Duration
	for i := 0; i < ops; i++ {
		op, err := stream.Next()
		if err != nil {
			return row, err
		}
		res, _, err := access.Execute(d, h, p, "admin", op)
		if err != nil {
			return row, fmt.Errorf("op %d (%s %s): %w", i, op.Kind, op.Select, err)
		}
		for _, st := range states {
			start := time.Now()
			applyErr := st.m.Apply(st.v, d, st.pm, res.Deltas)
			incTotal += time.Since(start)

			start = time.Now()
			pm, err := p.Evaluate(d, h, st.user)
			if err != nil {
				return row, err
			}
			fresh := view.Materialize(d, pm)
			fullTotal += time.Since(start)

			if applyErr != nil {
				// Fall back exactly as core does: rebuild the cached state.
				row.Fallbacks++
				st.v, st.pm = fresh, pm
				continue
			}
			if !xmltree.Equal(st.v.Doc, fresh.Doc) {
				return row, fmt.Errorf("op %d (%s %s): user %s: patched view diverged from rebuild",
					i, op.Kind, op.Select, st.user)
			}
		}
	}
	perUserOps := float64(ops * len(users))
	row.FullNsPerOp = float64(fullTotal.Nanoseconds()) / perUserOps
	row.IncNsPerOp = float64(incTotal.Nanoseconds()) / perUserOps
	if row.IncNsPerOp > 0 {
		row.Speedup = row.FullNsPerOp / row.IncNsPerOp
	}
	return row, nil
}

func b11IncrementalMaintenance() error {
	header("B11 — incremental view maintenance vs full re-materialization")
	sizes := []int{100, 1000, 5000}
	ops := 40
	if quick {
		sizes = []int{100, 1000}
		ops = 20
	}
	mixes := []string{"update-text", "rename", "append", "remove", "mixed"}
	rep := b11Report{Schema: b11Schema, Quick: quick}
	fmt.Printf("%10s %10s %14s %7s %6s %14s %14s %9s %10s\n",
		"patients", "nodes", "mix", "users", "ops", "full/op", "inc/op", "speedup", "fallbacks")
	for _, n := range sizes {
		for _, mix := range mixes {
			row, err := b11Run(n, ops, mix)
			if err != nil {
				return err
			}
			rep.Rows = append(rep.Rows, row)
			fmt.Printf("%10d %10d %14s %7d %6d %14s %14s %8.1fx %10d\n",
				row.Patients, row.Nodes, row.Mix, row.Users, row.Ops,
				time.Duration(row.FullNsPerOp), time.Duration(row.IncNsPerOp),
				row.Speedup, row.Fallbacks)
		}
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(b11Out, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", b11Out)
	fmt.Println("Expected shape: full rebuild scales with document size; the patch cost")
	fmt.Println("scales with the touched subtree, so the speedup grows with the document.")
	return nil
}
