// Experiment B14 (EXPERIMENTS.md): static rewrite vs per-user views as the
// fleet scales. The document is held constant while the user count grows
// 8 → 512. Two fixed probe cohorts — the three staff logins and five
// patients — answer the query corpus through both read strategies at every
// fleet size: the rewrite path evaluates guarded plans over the source
// document (profile-shared programs, no per-user state), the view path
// starts each probe cold (policy evaluation + materialization, the cost a
// view-based server pays per new user) and queries the view. Both paths
// are verified answer-for-answer before anything is timed.
//
// The headline is the scaling shape, not a single speedup: per-query probe
// latency on the rewrite path stays flat as the fleet grows and the
// rewriter's state stays at one program per rule profile, while the view
// strategy's resident node count — the storage needed to keep the whole
// fleet served — grows with every user. Rows are emitted as
// BENCH_b14.json.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"securexml/internal/policy"
	"securexml/internal/rewrite"
	"securexml/internal/subject"
	"securexml/internal/view"
	"securexml/internal/workload"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
)

const b14Schema = "securexml/bench-b14/v1"

type b14Row struct {
	Users    int `json:"users"`
	Nodes    int `json:"nodes"`
	Queries  int `json:"queries"`
	Programs int `json:"programs"`
	// Per-query probe latencies, by cohort and path. The cohorts are
	// identical at every fleet size, so each column must stay flat.
	RewriteStaffNs   float64 `json:"rewrite_staff_ns_per_query"`
	RewritePatientNs float64 `json:"rewrite_patient_ns_per_query"`
	ViewStaffNs      float64 `json:"view_staff_ns_per_query"`
	ViewPatientNs    float64 `json:"view_patient_ns_per_query"`
	// ViewNodesResident is the total materialized-view size across the
	// whole fleet — the per-user storage the rewrite path never builds.
	ViewNodesResident int `json:"view_nodes_resident"`
}

type b14Report struct {
	Schema string   `json:"schema"`
	Quick  bool     `json:"quick"`
	Rows   []b14Row `json:"rows"`
}

// b14Queries is the probe workload: node-set and atomic queries inside and
// around the $USER-dependent part of the paper policy.
var b14Queries = []string{
	"//diagnosis",
	"/patients/*",
	"//service/text()",
	"/patients/*[name() = $USER]/descendant-or-self::node()",
	"count(//RESTRICTED)",
}

// b14MaxUsers bounds the sweep; the document carries one patient element
// per possible patient user so the tree is identical for every row.
const b14MaxUsers = 512

var (
	b14StaffProbe   = []string{"beaufort", "laporte", "richard"}
	b14PatientProbe = []string{"p0", "p1", "p2", "p3", "p4"}
)

func b14Env() (*xmltree.Document, *subject.Hierarchy, *policy.Policy, error) {
	patients := b14MaxUsers // every fleet size sees the same document
	d, err := workload.Hospital(workload.HospitalConfig{Patients: patients, RecordsPerPatient: 1, Seed: 1})
	if err != nil {
		return nil, nil, nil, err
	}
	h, err := workload.HospitalHierarchy(patients)
	if err != nil {
		return nil, nil, nil, err
	}
	p, err := workload.HospitalPolicy(h)
	if err != nil {
		return nil, nil, nil, err
	}
	return d, h, p, nil
}

// b14Fleet returns the first n users: the three staff logins, then
// patients.
func b14Fleet(n int) []string {
	users := append([]string(nil), b14StaffProbe...)
	for i := 0; len(users) < n; i++ {
		users = append(users, fmt.Sprintf("p%d", i))
	}
	return users[:n]
}

// b14RewriteAnswer renders one rewritten answer (mirrors how core.Session
// serves the rewrite tier).
func b14RewriteAnswer(pg *rewrite.Program, root *xmltree.Node, user, q string) ([]string, error) {
	pl, err := pg.PlanFor(q)
	if err != nil {
		return nil, err
	}
	vars := xpath.Vars{"USER": xpath.String(user)}
	if pl.Mode == rewrite.PlanEmpty {
		return nil, nil
	}
	var sec *xpath.Security
	var st *rewrite.EvalState
	if pl.Mode == rewrite.PlanGuarded {
		sec, st = pg.Security(vars)
	}
	val, err := pl.Eval(root, vars, sec)
	if err != nil {
		return nil, err
	}
	if st != nil && st.Err() != nil {
		return nil, st.Err()
	}
	return b14Render(val, sec), nil
}

func b14Render(val xpath.Value, sec *xpath.Security) []string {
	if ns, ok := val.(xpath.NodeSet); ok {
		rows := make([]string, len(ns))
		for i, n := range ns {
			rows[i] = fmt.Sprintf("%s %q %q", n.ID(), sec.EffectiveLabel(n), sec.StringValue(n))
		}
		return rows
	}
	return []string{val.TypeName() + " " + val.Str()}
}

// b14Verify pins rewrite == view answer-for-answer for both probe cohorts
// before anything is timed.
func b14Verify(d *xmltree.Document, h *subject.Hierarchy, p *policy.Policy, eng *rewrite.Engine, users []string) error {
	for _, u := range users {
		pg, reason := eng.ProgramFor(u)
		if pg == nil {
			return fmt.Errorf("user %s: rewrite fallback (%v) on the chain-only paper policy", u, reason)
		}
		pm, err := p.Evaluate(d, h, u)
		if err != nil {
			return err
		}
		v := view.Materialize(d, pm)
		for _, q := range b14Queries {
			got, err := b14RewriteAnswer(pg, d.Root(), u, q)
			if err != nil {
				return fmt.Errorf("user %s query %s: %w", u, q, err)
			}
			c, err := xpath.Compile(q)
			if err != nil {
				return err
			}
			val, err := c.Eval(v.Doc.Root(), xpath.Vars{"USER": xpath.String(u)})
			if err != nil {
				return err
			}
			want := b14Render(val, nil)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				return fmt.Errorf("user %s query %s: rewrite %v, view %v", u, q, got, want)
			}
		}
	}
	return nil
}

// b14TimeRewrite measures the probe cohort through the shared engine.
func b14TimeRewrite(eng *rewrite.Engine, root *xmltree.Node, probe []string, reps int) (time.Duration, error) {
	start := time.Now()
	for rep := 0; rep < reps; rep++ {
		for _, u := range probe {
			pg, _ := eng.ProgramFor(u)
			for _, q := range b14Queries {
				if _, err := b14RewriteAnswer(pg, root, u, q); err != nil {
					return 0, err
				}
			}
		}
	}
	return time.Since(start), nil
}

// b14TimeView measures the probe cohort cold on the view path: each user
// pays policy evaluation + materialization, then queries the view.
func b14TimeView(d *xmltree.Document, h *subject.Hierarchy, p *policy.Policy, probe []string, reps int) (time.Duration, error) {
	start := time.Now()
	for rep := 0; rep < reps; rep++ {
		for _, u := range probe {
			pm, err := p.Evaluate(d, h, u)
			if err != nil {
				return 0, err
			}
			v := view.Materialize(d, pm)
			vars := xpath.Vars{"USER": xpath.String(u)}
			for _, q := range b14Queries {
				c, err := xpath.Compile(q)
				if err != nil {
					return 0, err
				}
				if _, err := c.Eval(v.Doc.Root(), vars); err != nil {
					return 0, err
				}
			}
		}
	}
	return time.Since(start), nil
}

func b14Run(d *xmltree.Document, h *subject.Hierarchy, p *policy.Policy, fleet []string, reps int) (b14Row, error) {
	row := b14Row{Users: len(fleet), Nodes: d.Len(), Queries: len(b14Queries)}

	// One engine per policy epoch, exactly like internal/core keys it; the
	// whole fleet registers before the probes run, so the engine carries
	// the per-fleet state (which is just one program per rule profile).
	eng := rewrite.NewEngine(p, h)
	programs := map[*rewrite.Program]bool{}
	for _, u := range fleet {
		pg, reason := eng.ProgramFor(u)
		if pg == nil {
			return row, fmt.Errorf("user %s: rewrite fallback (%v)", u, reason)
		}
		programs[pg] = true
	}
	row.Programs = len(programs)
	if err := b14Verify(d, h, p, eng, append(append([]string{}, b14StaffProbe...), b14PatientProbe...)); err != nil {
		return row, err
	}

	// The view strategy's fleet cost: one materialized view per user.
	for _, u := range fleet {
		pm, err := p.Evaluate(d, h, u)
		if err != nil {
			return row, err
		}
		row.ViewNodesResident += view.Materialize(d, pm).Doc.Len()
	}

	// One untimed pass per measurement warms plan caches and the allocator,
	// then batches repeat until a wall-clock floor is reached so the tiny
	// patient-view timings are not dominated by scheduler/GC noise.
	minMeasure := 200 * time.Millisecond
	if quick {
		minMeasure = 50 * time.Millisecond
	}
	measure := func(batch func(reps int) (time.Duration, error), probe []string) (float64, error) {
		if _, err := batch(1); err != nil {
			return 0, err
		}
		var total time.Duration
		samples := 0
		for total < minMeasure || samples < reps*len(probe)*len(b14Queries) {
			d, err := batch(reps)
			if err != nil {
				return 0, err
			}
			total += d
			samples += reps * len(probe) * len(b14Queries)
		}
		return float64(total.Nanoseconds()) / float64(samples), nil
	}
	var err2 error
	row.RewriteStaffNs, err2 = measure(func(r int) (time.Duration, error) {
		return b14TimeRewrite(eng, d.Root(), b14StaffProbe, r)
	}, b14StaffProbe)
	if err2 != nil {
		return row, err2
	}
	row.RewritePatientNs, err2 = measure(func(r int) (time.Duration, error) {
		return b14TimeRewrite(eng, d.Root(), b14PatientProbe, r)
	}, b14PatientProbe)
	if err2 != nil {
		return row, err2
	}
	row.ViewStaffNs, err2 = measure(func(r int) (time.Duration, error) {
		return b14TimeView(d, h, p, b14StaffProbe, r)
	}, b14StaffProbe)
	if err2 != nil {
		return row, err2
	}
	row.ViewPatientNs, err2 = measure(func(r int) (time.Duration, error) {
		return b14TimeView(d, h, p, b14PatientProbe, r)
	}, b14PatientProbe)
	return row, err2
}

func b14RewriteScaling() error {
	header("B14 — static rewrite vs per-user views: fleet scaling on a fixed document")
	sizes := []int{8, 32, 128, 512}
	reps := 5
	if quick {
		sizes = []int{8, 64}
		reps = 2
	}
	d, h, p, err := b14Env()
	if err != nil {
		return err
	}
	rep := b14Report{Schema: b14Schema, Quick: quick}
	fmt.Printf("%7s %9s %14s %14s %14s %14s %12s\n",
		"users", "programs", "rw staff", "rw patient", "view staff", "view patient", "view nodes")
	for _, n := range sizes {
		row, err := b14Run(d, h, p, b14Fleet(n), reps)
		if err != nil {
			return err
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("%7d %9d %14s %14s %14s %14s %12d\n",
			row.Users, row.Programs,
			time.Duration(row.RewriteStaffNs), time.Duration(row.RewritePatientNs),
			time.Duration(row.ViewStaffNs), time.Duration(row.ViewPatientNs),
			row.ViewNodesResident)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(b14Out, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", b14Out)
	fmt.Println("Expected shape: every per-query probe column stays flat as the fleet grows")
	fmt.Println("and the program count stays at the profile count, while the view path's")
	fmt.Println("resident node count grows with every user. On a document this small the")
	fmt.Println("materialized view answers individual queries faster — the rewrite tier's")
	fmt.Println("win is what it does NOT hold: no per-user view, no per-user program, so")
	fmt.Println("serving cost is independent of how many users the fleet has accumulated.")
	return nil
}

// validateB14Report checks an emitted B14 report against its schema: rows
// must sweep strictly growing fleets over one fixed document, the view
// path's resident storage must grow with the fleet, the rewriter's program
// count must not, and every per-query probe latency must stay flat (a 2x
// tolerance absorbs CI timer noise; quiet machines land within ±10%).
func validateB14Report(path string) (*b14Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep b14Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != b14Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, b14Schema)
	}
	if len(rep.Rows) < 2 {
		return nil, fmt.Errorf("%s: %d rows, want a sweep of at least 2", path, len(rep.Rows))
	}
	cols := []struct {
		name string
		get  func(b14Row) float64
	}{
		{"rewrite_staff", func(r b14Row) float64 { return r.RewriteStaffNs }},
		{"rewrite_patient", func(r b14Row) float64 { return r.RewritePatientNs }},
		{"view_staff", func(r b14Row) float64 { return r.ViewStaffNs }},
		{"view_patient", func(r b14Row) float64 { return r.ViewPatientNs }},
	}
	for i, r := range rep.Rows {
		switch {
		case r.Users <= 0 || r.Nodes <= 0 || r.Queries <= 0 || r.Programs <= 0:
			return nil, fmt.Errorf("%s: row %d: non-positive size fields", path, i)
		case r.ViewNodesResident <= 0:
			return nil, fmt.Errorf("%s: row %d: non-positive resident view size", path, i)
		}
		for _, c := range cols {
			if c.get(r) <= 0 {
				return nil, fmt.Errorf("%s: row %d: non-positive %s timing", path, i, c.name)
			}
		}
		if i > 0 {
			prev := rep.Rows[i-1]
			if r.Users <= prev.Users {
				return nil, fmt.Errorf("%s: row %d: users %d not growing", path, i, r.Users)
			}
			if r.Nodes != prev.Nodes {
				return nil, fmt.Errorf("%s: row %d: document changed mid-sweep (%d vs %d nodes)", path, i, r.Nodes, prev.Nodes)
			}
			if r.ViewNodesResident <= prev.ViewNodesResident {
				return nil, fmt.Errorf("%s: row %d: view storage did not grow with the fleet", path, i)
			}
			if r.Programs != prev.Programs {
				return nil, fmt.Errorf("%s: row %d: program count changed with fleet size (%d vs %d)", path, i, r.Programs, prev.Programs)
			}
		}
	}
	for _, c := range cols {
		lo, hi := c.get(rep.Rows[0]), c.get(rep.Rows[0])
		for _, r := range rep.Rows[1:] {
			if v := c.get(r); v < lo {
				lo = v
			} else if v > hi {
				hi = v
			}
		}
		if hi > 2*lo {
			return nil, fmt.Errorf("%s: %s per-query cost not flat: %.0fns..%.0fns across the sweep",
				path, c.name, lo, hi)
		}
	}
	return &rep, nil
}
