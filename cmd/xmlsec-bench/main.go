// Command xmlsec-bench runs the performance experiments of EXPERIMENTS.md
// (B1–B7, B11) and prints one table per experiment. It is the
// human-friendly companion of the testing.B benchmarks in bench_test.go;
// shapes reported by both must agree.
//
// Usage:
//
//	xmlsec-bench                        # run all experiments
//	xmlsec-bench -exp b1                # one experiment (b1..b7, b11, b12, b14, b15, e11, obs)
//	xmlsec-bench -quick                 # smaller sweeps
//	xmlsec-bench -exp obs -out BENCH_obs.json
//	xmlsec-bench -exp b11 -b11-out BENCH_b11.json
//	xmlsec-bench -exp b12 -b12-out BENCH_b12.json
//	xmlsec-bench -exp b14 -b14-out BENCH_b14.json
//	xmlsec-bench -exp b15 -b15-out BENCH_b15.json
//	xmlsec-bench -validate BENCH_obs.json
//	xmlsec-bench -validate-b12 BENCH_b12.json
//	xmlsec-bench -validate-b14 BENCH_b14.json
//	xmlsec-bench -validate-b15 BENCH_b15.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"securexml/internal/access"
	"securexml/internal/baseline"
	"securexml/internal/labeling"
	"securexml/internal/logicmodel"
	"securexml/internal/policy"
	"securexml/internal/qfilter"
	"securexml/internal/subject"
	"securexml/internal/view"
	"securexml/internal/workload"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
	"securexml/internal/xupdate"
)

var (
	quick    bool
	obsOut   string
	obsIters int
	b11Out   string
	b12Out   string
	b14Out   string
	b15Out   string
	e11Out   string
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (b1..b7, b11, b12, b14, b15, e11, obs, or all)")
	flag.BoolVar(&quick, "quick", false, "smaller sweeps")
	flag.StringVar(&obsOut, "out", "BENCH_obs.json", "where the obs experiment writes its report")
	flag.StringVar(&b11Out, "b11-out", "BENCH_b11.json", "where experiment b11 writes its report")
	flag.StringVar(&b12Out, "b12-out", "BENCH_b12.json", "where experiment b12 writes its report")
	flag.StringVar(&b14Out, "b14-out", "BENCH_b14.json", "where experiment b14 writes its report")
	flag.StringVar(&b15Out, "b15-out", "BENCH_b15.json", "where experiment b15 writes its report")
	flag.StringVar(&e11Out, "e11-out", "BENCH_e11.json", "where experiment e11 writes its report")
	flag.IntVar(&obsIters, "obs-iters", 0, "override the obs experiment iteration count")
	validate := flag.String("validate", "", "validate an emitted obs report and exit")
	validateB12 := flag.String("validate-b12", "", "validate an emitted b12 report and exit")
	validateB14 := flag.String("validate-b14", "", "validate an emitted b14 report and exit")
	validateB15 := flag.String("validate-b15", "", "validate an emitted b15 report and exit")
	flag.Parse()

	if *validate != "" {
		rep, err := validateObsReport(*validate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmlsec-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid (%d ops, %.0f ops/sec, hit-rate %.3f, %d stages)\n",
			*validate, rep.Ops, rep.OpsPerSec, rep.Cache.HitRate, len(rep.Stages))
		return
	}

	if *validateB12 != "" {
		rep, err := validateB12Report(*validateB12)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmlsec-bench:", err)
			os.Exit(1)
		}
		best := 0.0
		for _, r := range rep.Rows {
			if r.Speedup > best {
				best = r.Speedup
			}
		}
		fmt.Printf("%s: valid (%d rows, best speedup %.1fx)\n", *validateB12, len(rep.Rows), best)
		return
	}

	if *validateB14 != "" {
		rep, err := validateB14Report(*validateB14)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmlsec-bench:", err)
			os.Exit(1)
		}
		last := rep.Rows[len(rep.Rows)-1]
		fmt.Printf("%s: valid (%d rows, %d users, %d programs, %d resident view nodes at full fleet)\n",
			*validateB14, len(rep.Rows), last.Users, last.Programs, last.ViewNodesResident)
		return
	}

	if *validateB15 != "" {
		rep, err := validateB15Report(*validateB15)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmlsec-bench:", err)
			os.Exit(1)
		}
		last := rep.Rows[len(rep.Rows)-1]
		fmt.Printf("%s: valid (%d-CPU host, %d sessions, %.0f reads/s at %d procs, probe ratio %.2f)\n",
			*validateB15, rep.HostCPUs, rep.Sessions, last.ReadsPerSec, last.Procs, rep.Probe.Ratio)
		return
	}

	experiments := map[string]func() error{
		"b1":  b1ViewMaterialization,
		"b2":  b2XPathAxes,
		"b3":  b3WritePaths,
		"b4":  b4LabelSchemes,
		"b5":  b5LogicVsNative,
		"b6":  b6ConflictResolution,
		"b7":  b7QueryFilter,
		"b11": b11IncrementalMaintenance,
		"b12": b12SharedScan,
		"b14": b14RewriteScaling,
		"b15": b15SnapshotReads,
		"e11": e11RepairEngine,
		"obs": bObs,
	}
	if *exp != "all" {
		fn, ok := experiments[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "xmlsec-bench: unknown experiment %q\n", *exp)
			os.Exit(1)
		}
		if err := fn(); err != nil {
			fmt.Fprintln(os.Stderr, "xmlsec-bench:", err)
			os.Exit(1)
		}
		return
	}
	for _, name := range []string{"b1", "b2", "b3", "b4", "b5", "b6", "b7", "b11", "b12", "b14", "b15", "e11", "obs"} {
		if err := experiments[name](); err != nil {
			fmt.Fprintln(os.Stderr, "xmlsec-bench:", err)
			os.Exit(1)
		}
	}
}

// timeIt measures the median-ish cost of fn by running it reps times.
func timeIt(reps int, fn func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(reps), nil
}

func header(title string) {
	fmt.Printf("\n### %s\n\n", title)
}

func b1ViewMaterialization() error {
	header("B1 — view materialization: document size x policy size (user beaufort)")
	sizes := []int{10, 100, 1000, 5000}
	ruleCounts := []int{0, 32, 128}
	if quick {
		sizes = []int{10, 100, 1000}
		ruleCounts = []int{0, 32}
	}
	fmt.Printf("%10s %12s %12s %12s %12s\n", "patients", "nodes", "rules", "perm-pass", "view-total")
	for _, n := range sizes {
		for _, extra := range ruleCounts {
			d, err := workload.Hospital(workload.HospitalConfig{Patients: n, Seed: 1})
			if err != nil {
				return err
			}
			h, err := workload.HospitalHierarchy(n)
			if err != nil {
				return err
			}
			p, err := workload.ScaledPolicy(h, extra)
			if err != nil {
				return err
			}
			reps := repsFor(n)
			permCost, err := timeIt(reps, func() error {
				_, err := p.Evaluate(d, h, "beaufort")
				return err
			})
			if err != nil {
				return err
			}
			totalCost, err := timeIt(reps, func() error {
				pm, err := p.Evaluate(d, h, "beaufort")
				if err != nil {
					return err
				}
				view.Materialize(d, pm)
				return nil
			})
			if err != nil {
				return err
			}
			fmt.Printf("%10d %12d %12d %12s %12s\n", n, d.Len(), p.Len(), permCost, totalCost)
		}
	}
	fmt.Println("\nExpected shape: ~linear in nodes; the rule count affects the perm pass only.")
	return nil
}

func repsFor(n int) int {
	switch {
	case n >= 5000:
		return 3
	case n >= 1000:
		return 10
	default:
		return 50
	}
}

func b2XPathAxes() error {
	header("B2 — XPath evaluation cost by axis (random tree, ~20k nodes)")
	nodes := 20000
	if quick {
		nodes = 5000
	}
	d, err := workload.RandomTree(workload.TreeConfig{Nodes: nodes, Seed: 9})
	if err != nil {
		return err
	}
	queries := []struct{ name, path string }{
		{"child", "/root/*"},
		{"descendant", "//item"}, // served by the element-name index
		{"descendant-walk", "/descendant-or-self::*/self::item"},
		{"descendant-text", "//item/text()"},
		{"positional", "//group[2]"},
		{"value-predicate", "//item[text() = 'v100']"},
		{"ancestor", "//item[1]/ancestor::*"},
		{"union", "//a | //b"},
		{"count", "count(//item)"},
	}
	fmt.Printf("%18s %12s %10s\n", "query", "cost", "result")
	for _, q := range queries {
		c, err := xpath.Compile(q.path)
		if err != nil {
			return err
		}
		var size string
		cost, err := timeIt(5, func() error {
			v, err := c.Eval(d.Root(), nil)
			if err != nil {
				return err
			}
			if ns, ok := v.(xpath.NodeSet); ok {
				size = fmt.Sprintf("%d nodes", len(ns))
			} else {
				size = v.Str()
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("%18s %12s %10s\n", q.name, cost, size)
	}
	fmt.Println("\nExpected shape: descendant axes scale with subtree size; child with fan-out.")
	return nil
}

func b3WritePaths() error {
	header("B3 — write paths: secured (view) vs baseline (source) vs unsecured floor")
	patients := 500
	if quick {
		patients = 100
	}
	op := &xupdate.Op{Kind: xupdate.Update,
		Select: fmt.Sprintf("/patients/p%d/diagnosis", patients/2), NewValue: "seen"}
	build := func() (*xmltree.Document, *subject.Hierarchy, *policy.Policy, error) {
		d, err := workload.Hospital(workload.HospitalConfig{Patients: patients, Seed: 1})
		if err != nil {
			return nil, nil, nil, err
		}
		h, err := workload.HospitalHierarchy(patients)
		if err != nil {
			return nil, nil, nil, err
		}
		p, err := workload.HospitalPolicy(h)
		if err != nil {
			return nil, nil, nil, err
		}
		return d, h, p, nil
	}
	fmt.Printf("%26s %12s\n", "path", "cost/op")
	{
		d, h, p, err := build()
		if err != nil {
			return err
		}
		cost, err := timeIt(20, func() error {
			_, _, err := access.Execute(d, h, p, "laporte", op)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("%26s %12s\n", "secured (view writes)", cost)
	}
	{
		d, h, p, err := build()
		if err != nil {
			return err
		}
		cost, err := timeIt(20, func() error {
			_, err := baseline.Execute(d, h, p, "laporte", op)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("%26s %12s\n", "baseline (source writes)", cost)
	}
	{
		d, _, _, err := build()
		if err != nil {
			return err
		}
		cost, err := timeIt(200, func() error {
			_, err := xupdate.Execute(d, op, nil)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("%26s %12s\n", "unsecured floor", cost)
	}
	fmt.Println("\nExpected shape: secured ≈ perm+view cost on top of the baseline;")
	fmt.Println("both privilege-checked paths sit well above the unsecured floor.")
	return nil
}

func b4LabelSchemes() error {
	header("B4 — labeling scheme ablation: key growth under insertion storms")
	n := 100000
	if quick {
		n = 10000
	}
	fmt.Printf("%10s %14s %16s %16s\n", "scheme", "pattern", "inserts", "final key bytes")
	for _, name := range []string{"fracpath", "lsdx"} {
		s, err := labeling.ByName(name)
		if err != nil {
			return err
		}
		prev := ""
		for i := 0; i < n; i++ {
			k, err := s.Between(prev, "")
			if err != nil {
				return err
			}
			prev = k
		}
		fmt.Printf("%10s %14s %16d %16d\n", name, "append", n, len(prev))

		lo, _ := s.First()
		hi, err := s.Between(lo, "")
		if err != nil {
			return err
		}
		splits := 200
		for i := 0; i < splits; i++ {
			mid, err := s.Between(lo, hi)
			if err != nil {
				return err
			}
			if i%2 == 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		fmt.Printf("%10s %14s %16d %16d\n", name, "midsplit", splits, len(lo))
	}
	fmt.Println("\nExpected shape: fracpath appends stay O(log n); lsdx appends grow ~n/25.")
	fmt.Println("Midsplits grow linearly for both (information-theoretic lower bound).")
	return nil
}

func b5LogicVsNative() error {
	header("B5 — the Datalog axioms vs the native engines (secretary view)")
	sizes := []int{5, 20, 50}
	if quick {
		sizes = []int{5, 20}
	}
	fmt.Printf("%10s %12s %14s %14s %8s\n", "patients", "nodes", "native", "logic", "ratio")
	for _, n := range sizes {
		d, err := workload.Hospital(workload.HospitalConfig{Patients: n, Seed: 1})
		if err != nil {
			return err
		}
		h, err := workload.HospitalHierarchy(n)
		if err != nil {
			return err
		}
		p, err := workload.HospitalPolicy(h)
		if err != nil {
			return err
		}
		native, err := timeIt(20, func() error {
			pm, err := p.Evaluate(d, h, "beaufort")
			if err != nil {
				return err
			}
			view.Materialize(d, pm)
			return nil
		})
		if err != nil {
			return err
		}
		logic, err := timeIt(3, func() error {
			_, err := logicmodel.Build(d, h, p, "beaufort")
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("%10d %12d %14s %14s %7.0fx\n", n, d.Len(), native, logic,
			float64(logic)/float64(native))
	}
	fmt.Println("\nExpected shape: the logic encoding is orders of magnitude slower and")
	fmt.Println("grows super-linearly — it is the correctness oracle, not the engine.")
	return nil
}

func b6ConflictResolution() error {
	header("B6 — conflict resolution (axiom 14) scaling with rule count")
	extras := []int{0, 16, 64, 256, 1024}
	if quick {
		extras = []int{0, 16, 64}
	}
	d, err := workload.Hospital(workload.HospitalConfig{Patients: 200, Seed: 1})
	if err != nil {
		return err
	}
	fmt.Printf("%10s %14s\n", "rules", "perm pass")
	for _, extra := range extras {
		h, err := workload.HospitalHierarchy(200)
		if err != nil {
			return err
		}
		p, err := workload.ScaledPolicy(h, extra)
		if err != nil {
			return err
		}
		cost, err := timeIt(5, func() error {
			_, err := p.Evaluate(d, h, "laporte")
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("%10d %14s\n", p.Len(), cost)
	}
	fmt.Println("\nExpected shape: linear in the applicable rule count (one XPath")
	fmt.Println("evaluation per rule; latest-wins scan is constant per node).")
	return nil
}

func b7QueryFilter() error {
	header("B7 — query-filter enforcement (§5 future work) vs view materialization")
	sizes := []int{100, 1000, 5000}
	if quick {
		sizes = []int{100, 1000}
	}
	query, err := xpath.Compile("/patients/*[service = 'cardiology']")
	if err != nil {
		return err
	}
	fmt.Printf("%10s %18s %14s %16s %14s\n",
		"patients", "filtered 1-shot", "view 1-shot", "filtered x100", "view x100")
	for _, n := range sizes {
		d, err := workload.Hospital(workload.HospitalConfig{Patients: n, Seed: 1})
		if err != nil {
			return err
		}
		h, err := workload.HospitalHierarchy(n)
		if err != nil {
			return err
		}
		p, err := workload.HospitalPolicy(h)
		if err != nil {
			return err
		}
		pm, err := p.Evaluate(d, h, "beaufort")
		if err != nil {
			return err
		}
		sec := qfilter.ForPerms(pm)
		f1, err := timeIt(10, func() error {
			_, err := query.SelectFiltered(d.Root(), nil, sec)
			return err
		})
		if err != nil {
			return err
		}
		v1, err := timeIt(10, func() error {
			v := view.Materialize(d, pm)
			_, err := query.Select(v.Doc.Root(), nil)
			return err
		})
		if err != nil {
			return err
		}
		f100, err := timeIt(2, func() error {
			for q := 0; q < 100; q++ {
				if _, err := query.SelectFiltered(d.Root(), nil, sec); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		v100, err := timeIt(2, func() error {
			v := view.Materialize(d, pm)
			for q := 0; q < 100; q++ {
				if _, err := query.Select(v.Doc.Root(), nil); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("%10d %18s %14s %16s %14s\n", n, f1, v1, f100, v100)
	}
	fmt.Println("\nExpected shape: filtering wins one-shot queries; the materialized view")
	fmt.Println("amortizes over repeated queries (crossover around 2-5 queries/epoch).")
	return nil
}
