// Experiment B15 (EXPERIMENTS.md): lock-free snapshot reads under
// group-commit write churn. The copy-on-write core publishes immutable
// generations through one atomic pointer, so a read never takes a lock and
// never waits for a writer — this experiment measures what that buys.
//
// Setup: a hospital document served to thousands of concurrent sessions
// (every user holds its singleton shared session; a bounded worker pool
// multiplexes them, the same shape an HTTP server produces). One writer
// drives workload.OpStream — the shared generator of the differential and
// race suites — through a fully privileged session, while an in-place
// mirror document applies the identical ops through the unsecured
// executor. At every phase boundary the database source must equal the
// mirror byte-for-byte, so the throughput numbers come with a built-in
// differential oracle over the clone-apply-publish pipeline.
//
// Two claims are measured, then checked by validateB15Report:
//
//   - Scaling: aggregate read throughput across a GOMAXPROCS sweep. On a
//     host with 8+ CPUs the reads/sec at 8 procs must reach 2x the
//     single-proc figure; on smaller hosts (CI containers are often
//     1-CPU) the validator only demands the sweep does not collapse. The
//     host CPU count is recorded in the report — no hardware, no claim.
//   - Readers never block on writers: read throughput under a
//     free-running writer must stay within a constant factor of the
//     fixed-churn baseline. Every published generation cold-resets the
//     per-(user, snapshot) mask memos, so both probe regimes pay
//     invalidation costs and the ratio isolates lock waiting from cache
//     warmth. A design that held a lock across commit work would show a
//     collapse here; CPU sharing with the writer is the only cost COW
//     readers pay.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"securexml/internal/core"
	"securexml/internal/policy"
	"securexml/internal/workload"
	"securexml/internal/xmltree"
	"securexml/internal/xpath"
	"securexml/internal/xupdate"
)

const b15Schema = "securexml/bench-b15/v1"

type b15Row struct {
	Procs   int   `json:"procs"`
	Workers int   `json:"workers"`
	Reads   int64 `json:"reads"`
	Writes  int64 `json:"writes"`
	// Generations counts the document generations the writes published;
	// group commit may coalesce, so generations <= writes.
	Generations  uint64  `json:"generations"`
	ElapsedNs    int64   `json:"elapsed_ns"`
	ReadsPerSec  float64 `json:"reads_per_sec"`
	WritesPerSec float64 `json:"writes_per_sec"`
}

// b15Probe is the readers-never-block check at the widest proc setting:
// the same read fleet under the sweep's fixed write churn (baseline) and
// under a free-running writer (contended). Both regimes pay generation
// invalidations, so the ratio isolates lock waiting from cache warmth.
type b15Probe struct {
	Procs           int     `json:"procs"`
	BaselinePerSec  float64 `json:"baseline_reads_per_sec"`
	ContendedPerSec float64 `json:"contended_reads_per_sec"`
	ContendedWrites int64   `json:"contended_writes"`
	// Ratio = contended / baseline; near 1.0 means a saturating writer
	// costs readers nothing but its CPU share, small values mean readers
	// queued behind the writer.
	Ratio float64 `json:"ratio"`
}

type b15Report struct {
	Schema   string   `json:"schema"`
	Quick    bool     `json:"quick"`
	HostCPUs int      `json:"host_cpus"`
	Nodes    int      `json:"nodes"`
	Sessions int      `json:"sessions"`
	Rows     []b15Row `json:"rows"`
	Probe    b15Probe `json:"probe"`
}

// b15Queries is the read mix: broad scans, text extraction and the
// $USER-dependent patient query, all served by the lock-free rewrite tier.
var b15Queries = []string{
	"//diagnosis",
	"/patients/*",
	"//service/text()",
	"/patients/*[name() = $USER]/descendant-or-self::node()",
}

// b15Env builds the benchmark database on the public core API: the paper's
// read policy over a synthetic hospital document, a patient-user fleet
// sized independently of the document, and one omnipotent writer login
// whose secured ops must degenerate to the unsecured executor's semantics.
// The returned mirror is the writer's in-place twin of the loaded document.
func b15Env(docPatients, userPatients int) (*core.Database, *xmltree.Document, []*core.Session, error) {
	mirror, err := workload.Hospital(workload.HospitalConfig{Patients: docPatients, Seed: 7})
	if err != nil {
		return nil, nil, nil, err
	}
	db := core.New(core.WithAuditLimit(0)) // silent: audit is not what B15 measures
	steps := []error{
		db.LoadXMLString(mirror.XML()),
		db.AddRole("staff"),
		db.AddRole("secretary", "staff"),
		db.AddRole("doctor", "staff"),
		db.AddRole("epidemiologist", "staff"),
		db.AddRole("patient"),
		db.AddRole("root"),
		db.AddUser("beaufort", "secretary"),
		db.AddUser("laporte", "doctor"),
		db.AddUser("richard", "epidemiologist"),
		db.AddUser("omni", "root"),
		// The axiom-13 read rules (the write rules stay out: all churn goes
		// through the omnipotent writer below).
		db.Grant(policy.Read, "/descendant-or-self::node()", "staff"),
		db.Revoke(policy.Read, "//diagnosis/node()", "secretary"),
		db.Grant(policy.Position, "//diagnosis/node()", "secretary"),
		db.Grant(policy.Read, "/patients", "patient"),
		db.Grant(policy.Read, "/patients/*[name() = $USER]/descendant-or-self::node()", "patient"),
		db.Revoke(policy.Read, "/patients/*", "epidemiologist"),
		db.Grant(policy.Position, "/patients/*", "epidemiologist"),
	}
	for _, err := range steps {
		if err != nil {
			return nil, nil, nil, err
		}
	}
	users := []string{"beaufort", "laporte", "richard"}
	for i := 0; i < userPatients; i++ {
		u := fmt.Sprintf("p%d", i)
		if err := db.AddUser(u, "patient"); err != nil {
			return nil, nil, nil, err
		}
		users = append(users, u)
	}
	for _, priv := range policy.Privileges {
		// node() never matches attributes (they are not on the child axis),
		// so omnipotence needs the attribute subtrees granted explicitly.
		if err := db.Grant(priv, "/descendant-or-self::node()", "root"); err != nil {
			return nil, nil, nil, err
		}
		if err := db.Grant(priv, "/descendant-or-self::node()/attribute::node()/descendant-or-self::node()", "root"); err != nil {
			return nil, nil, nil, err
		}
	}
	sessions := make([]*core.Session, 0, len(users))
	for _, u := range users {
		s, err := db.SharedSession(u)
		if err != nil {
			return nil, nil, nil, err
		}
		sessions = append(sessions, s)
	}
	return db, mirror, sessions, nil
}

// b15WriteOnce draws the next executable op, applies it to the mirror with
// the raw in-place executor and to the database through the secured
// session, keeping both in lockstep. It reports false for ops skipped on
// both sides (the known secured/unsecured split: unsecured Update on an
// EMPTY element creates a text child, the secured executor refuses).
func b15WriteOnce(s *core.Session, mirror *xmltree.Document, stream *workload.Stream) (bool, error) {
	op, err := stream.Next()
	if err != nil {
		return false, err
	}
	if op.Kind == xupdate.Update {
		ns, err := xpath.Select(mirror, op.Select, nil)
		if err != nil {
			return false, err
		}
		if len(ns) == 1 && len(ns[0].Children()) == 0 {
			return false, nil
		}
	}
	if _, err := xupdate.Execute(mirror, op, nil); err != nil {
		return false, err
	}
	if _, err := s.Update(op); err != nil {
		return false, err
	}
	return true, nil
}

type b15PhaseResult struct {
	reads, writes int64
	generations   uint64
	readElapsed   time.Duration
	totalElapsed  time.Duration
}

// b15Phase runs the worker pool over the whole session fleet for dur,
// optionally with write churn. targetWrites selects the writer mode: 0
// runs no writer, a positive count performs exactly that many ops (kept
// identical across sweep rows so every row pays the same invalidation
// bill — each published generation cold-resets the per-user mask memos,
// so rows with different write counts would not be comparable), and -1
// free-runs the writer for the whole read window (the probe's contended
// regime). A positive target is completed even past the read window,
// bounded by 10x dur, so starved single-CPU hosts still report real
// churn. When the writer ran, the database source must equal the mirror
// afterwards.
func b15Phase(db *core.Database, mirror *xmltree.Document, stream *workload.Stream,
	sessions []*core.Session, workers int, dur time.Duration, targetWrites int64) (b15PhaseResult, error) {
	var (
		stop     atomic.Bool
		reads    atomic.Int64
		writes   int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	g0 := db.Stats().Generation
	start := time.Now()
	for g := 0; g < workers; g++ {
		// Worker g serves sessions g, g+workers, g+2*workers, ... so the
		// whole fleet stays concurrently live.
		mine := make([]*core.Session, 0, len(sessions)/workers+1)
		for i := g; i < len(sessions); i += workers {
			mine = append(mine, sessions[i])
		}
		wg.Add(1)
		go func(g int, mine []*core.Session) {
			defer wg.Done()
			for i := g; !stop.Load(); i++ {
				s := mine[i%len(mine)]
				if _, err := s.Query(b15Queries[i%len(b15Queries)]); err != nil {
					fail(err)
					return
				}
				reads.Add(1)
			}
		}(g, mine)
	}
	var writerErr error
	var writerDone sync.WaitGroup
	if targetWrites != 0 {
		w, err := db.SharedSession("omni")
		if err != nil {
			stop.Store(true)
			wg.Wait()
			return b15PhaseResult{}, err
		}
		writerDone.Add(1)
		go func() {
			defer writerDone.Done()
			maxDur := 10 * dur
			var pace time.Duration
			if targetWrites > 0 {
				// Spread an exact-count load across the read window instead
				// of bursting it at the start, so every part of the window
				// sees the same churn regime.
				pace = dur / time.Duration(targetWrites+1)
			}
			for {
				if targetWrites > 0 {
					if writes >= targetWrites || time.Since(start) > maxDur {
						return
					}
					time.Sleep(pace)
				} else if stop.Load() {
					return
				}
				ok, err := b15WriteOnce(w, mirror, stream)
				if err != nil {
					writerErr = err
					return
				}
				if ok {
					writes++
				}
			}
		}()
	}
	time.Sleep(dur)
	stop.Store(true)
	readElapsed := time.Since(start)
	wg.Wait()
	writerDone.Wait()
	res := b15PhaseResult{
		reads:        reads.Load(),
		writes:       writes,
		generations:  db.Stats().Generation - g0,
		readElapsed:  readElapsed,
		totalElapsed: time.Since(start),
	}
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return res, err
	}
	if writerErr != nil {
		return res, writerErr
	}
	if targetWrites != 0 {
		if writes == 0 {
			return res, fmt.Errorf("writer starved: no write completed within %s", res.totalElapsed)
		}
		if got, want := db.SourceXML(), mirror.XML(); got != want {
			return res, fmt.Errorf("COW executor diverged from the in-place mirror after the phase")
		}
	}
	return res, nil
}

func b15SnapshotReads() error {
	header("B15 — lock-free snapshot reads: COW generations under group-commit churn")
	docPatients, userPatients, workers := 256, 2048, 64
	dur := 400 * time.Millisecond
	var rowWrites int64 = 4
	verifyOps := 40
	if quick {
		docPatients, userPatients, workers = 64, 512, 32
		dur = 150 * time.Millisecond
		rowWrites = 2
		verifyOps = 15
	}
	procs := []int{1, 2, 4, 8}

	db, mirror, sessions, err := b15Env(docPatients, userPatients)
	if err != nil {
		return err
	}
	stream := workload.OpStream(workload.OpConfig{Doc: mirror, Seed: 7})

	// Verify before timing: replay a prefix of the op stream through both
	// executors and demand byte-identical documents — the differential
	// oracle of the race suite, re-run on this exact configuration.
	w, err := db.SharedSession("omni")
	if err != nil {
		return err
	}
	for i := 0; i < verifyOps; i++ {
		if _, err := b15WriteOnce(w, mirror, stream); err != nil {
			return fmt.Errorf("verify op %d: %w", i, err)
		}
	}
	if got, want := db.SourceXML(), mirror.XML(); got != want {
		return fmt.Errorf("verify: COW executor diverged from the in-place executor")
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	// One untimed read-only pass warms plan caches, session state and the
	// allocator so the first sweep row is not measuring cold starts.
	if _, err := b15Phase(db, mirror, stream, sessions, workers, dur/2, 0); err != nil {
		return fmt.Errorf("warm: %w", err)
	}

	rep := b15Report{
		Schema:   b15Schema,
		Quick:    quick,
		HostCPUs: runtime.NumCPU(),
		Nodes:    db.Stats().Nodes,
		Sessions: len(sessions),
	}
	fmt.Printf("host: %d CPUs; %d nodes; %d concurrent sessions over %d workers\n\n",
		rep.HostCPUs, rep.Nodes, rep.Sessions, workers)
	// Best-of-k per row: the generation invalidations land at
	// scheduler-chosen instants inside the read window, so single samples
	// scatter; the best sample estimates the row's capacity.
	samples := 3
	if quick {
		samples = 2
	}
	fmt.Printf("%7s %12s %12s %12s %8s\n", "procs", "reads/s", "writes/s", "reads", "gens")
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		var row b15Row
		for s := 0; s < samples; s++ {
			r, err := b15Phase(db, mirror, stream, sessions, workers, dur, rowWrites)
			if err != nil {
				return fmt.Errorf("procs=%d: %w", p, err)
			}
			cand := b15Row{
				Procs:        p,
				Workers:      workers,
				Reads:        r.reads,
				Writes:       r.writes,
				Generations:  r.generations,
				ElapsedNs:    r.readElapsed.Nanoseconds(),
				ReadsPerSec:  float64(r.reads) / r.readElapsed.Seconds(),
				WritesPerSec: float64(r.writes) / r.totalElapsed.Seconds(),
			}
			if cand.ReadsPerSec > row.ReadsPerSec {
				row = cand
			}
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("%7d %12.0f %12.1f %12d %8d\n",
			row.Procs, row.ReadsPerSec, row.WritesPerSec, row.Reads, row.Generations)
	}

	// Readers-never-block probe at the widest setting: the same fleet
	// under a free-running writer that commits as fast as the scheduler
	// lets it (contended), then under exactly that many paced writes with
	// an otherwise idle writer (baseline). Equal write counts mean equal
	// generation invalidations, so the ratio isolates lock waiting from
	// cache warmth: a design whose readers queue behind the writer
	// collapses here, COW readers only cede the writer's CPU share.
	pMax := procs[len(procs)-1]
	runtime.GOMAXPROCS(pMax)
	contended, err := b15Phase(db, mirror, stream, sessions, workers, dur, -1)
	if err != nil {
		return fmt.Errorf("probe (free-running writer): %w", err)
	}
	baseline, err := b15Phase(db, mirror, stream, sessions, workers, dur, contended.writes)
	if err != nil {
		return fmt.Errorf("probe (baseline churn): %w", err)
	}
	rep.Probe = b15Probe{
		Procs:           pMax,
		BaselinePerSec:  float64(baseline.reads) / baseline.readElapsed.Seconds(),
		ContendedPerSec: float64(contended.reads) / contended.readElapsed.Seconds(),
		ContendedWrites: contended.writes,
	}
	rep.Probe.Ratio = rep.Probe.ContendedPerSec / rep.Probe.BaselinePerSec
	fmt.Printf("\nprobe @ %d procs: baseline %.0f reads/s, free-running writer %.0f reads/s over %d writes (ratio %.2f)\n",
		pMax, rep.Probe.BaselinePerSec, rep.Probe.ContendedPerSec, rep.Probe.ContendedWrites, rep.Probe.Ratio)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(b15Out, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", b15Out)
	fmt.Println("Expected shape: reads/sec grows with GOMAXPROCS up to the host CPU count")
	fmt.Println("(a 1-CPU container shows a flat sweep — the host_cpus field records which")
	fmt.Println("claim the report can make), and the probe ratio stays near 1: readers on")
	fmt.Println("pinned COW generations share CPU with the writer but never wait for it.")
	return nil
}

// validateB15Report checks an emitted B15 report: the sweep must start at
// one proc and grow, every phase must have completed real read and write
// work with the write rounds published as at most one generation each, and
// the two headline claims hold at the strength the recorded host supports —
// >= 2x read scaling from 1 to 8 procs when the host has 8+ CPUs, a
// no-collapse floor otherwise, and a readers-never-block probe ratio in
// both cases.
func validateB15Report(path string) (*b15Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep b15Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != b15Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, b15Schema)
	}
	if rep.HostCPUs < 1 {
		return nil, fmt.Errorf("%s: host_cpus %d", path, rep.HostCPUs)
	}
	if rep.Nodes <= 0 || rep.Sessions <= 0 {
		return nil, fmt.Errorf("%s: non-positive environment sizes", path)
	}
	if len(rep.Rows) < 2 {
		return nil, fmt.Errorf("%s: %d rows, want a sweep of at least 2", path, len(rep.Rows))
	}
	for i, r := range rep.Rows {
		switch {
		case r.Procs <= 0 || r.Workers <= 0:
			return nil, fmt.Errorf("%s: row %d: non-positive procs/workers", path, i)
		case r.Reads <= 0 || r.ReadsPerSec <= 0 || r.ElapsedNs <= 0:
			return nil, fmt.Errorf("%s: row %d: no read work recorded", path, i)
		case r.Writes <= 0 || r.WritesPerSec <= 0:
			return nil, fmt.Errorf("%s: row %d: no write churn recorded", path, i)
		case r.Writes != rep.Rows[0].Writes:
			return nil, fmt.Errorf("%s: row %d: %d writes, want the fixed per-row churn of %d — rows are not comparable",
				path, i, r.Writes, rep.Rows[0].Writes)
		case r.Generations < 1 || r.Generations > uint64(r.Writes):
			return nil, fmt.Errorf("%s: row %d: %d generations for %d writes (want 1..writes)",
				path, i, r.Generations, r.Writes)
		}
		if i == 0 && r.Procs != 1 {
			return nil, fmt.Errorf("%s: sweep must start at 1 proc, got %d", path, r.Procs)
		}
		if i > 0 && r.Procs <= rep.Rows[i-1].Procs {
			return nil, fmt.Errorf("%s: row %d: procs %d not growing", path, i, r.Procs)
		}
	}
	tp1 := rep.Rows[0].ReadsPerSec
	last := rep.Rows[len(rep.Rows)-1]
	if rep.HostCPUs >= 8 && last.Procs >= 8 {
		if last.ReadsPerSec < 2*tp1 {
			return nil, fmt.Errorf("%s: read throughput scaled only %.2fx from 1 to %d procs on a %d-CPU host (want >= 2x)",
				path, last.ReadsPerSec/tp1, last.Procs, rep.HostCPUs)
		}
	} else if last.ReadsPerSec < 0.5*tp1 {
		return nil, fmt.Errorf("%s: read throughput collapsed to %.2fx at %d procs (floor 0.5x)",
			path, last.ReadsPerSec/tp1, last.Procs)
	}
	p := rep.Probe
	if p.Procs <= 0 || p.BaselinePerSec <= 0 || p.ContendedPerSec <= 0 || p.ContendedWrites < 1 {
		return nil, fmt.Errorf("%s: incomplete readers-never-block probe", path)
	}
	if p.Ratio < 0.3 {
		return nil, fmt.Errorf("%s: reads under a free-running writer fell to %.2fx of the baseline — readers are waiting on writers",
			path, p.Ratio)
	}
	return &rep, nil
}
