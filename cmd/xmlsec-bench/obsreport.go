// The obs experiment (B10) drives a mixed query/update workload through the
// full session pipeline with the telemetry registry reset at the start, then
// emits the registry snapshot as BENCH_obs.json: ops/sec, per-stage latency
// quantiles, view-cache effectiveness and decision counters. A separate
// -validate mode checks an emitted file against the schema so CI can smoke
// the whole loop.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"securexml/internal/core"
	"securexml/internal/obs"
	"securexml/internal/policy"
	"securexml/internal/workload"
	"securexml/internal/xupdate"
)

// obsSchema versions the report layout for the validator and CI. v2 adds
// the tracing-off vs tracing-on overhead comparison.
const obsSchema = "securexml/bench-obs/v2"

// ObsStage is one pipeline stage's latency summary, in seconds.
type ObsStage struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Sum   float64 `json:"sum"`
}

// ObsCache summarizes the session view cache.
type ObsCache struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// ObsTracing compares the same workload with request tracing off (no
// trace in the context — the production default outside the HTTP server)
// and on (one trace per operation through a Tracer).
type ObsTracing struct {
	OffOpsPerSec float64 `json:"off_ops_per_sec"`
	OnOpsPerSec  float64 `json:"on_ops_per_sec"`
	// OverheadPct is the throughput lost with tracing on, in percent of
	// the tracing-off rate (negative means noise made the traced pass
	// faster).
	OverheadPct float64 `json:"overhead_pct"`
	// Traces is how many finished traces the ring retained (capped at the
	// ring capacity).
	Traces int `json:"traces"`
}

// ObsConfig records how the workload was sized.
type ObsConfig struct {
	Patients int  `json:"patients"`
	Iters    int  `json:"iters"`
	Quick    bool `json:"quick"`
}

// ObsReport is the emitted document.
type ObsReport struct {
	Schema         string              `json:"schema"`
	Config         ObsConfig           `json:"config"`
	ElapsedSeconds float64             `json:"elapsed_seconds"`
	Ops            int                 `json:"ops"`
	OpsPerSec      float64             `json:"ops_per_sec"`
	Stages         map[string]ObsStage `json:"stages"`
	Cache          ObsCache            `json:"cache"`
	Decisions      map[string]uint64   `json:"decisions"`
	Counters       map[string]uint64   `json:"counters"`
	Tracing        ObsTracing          `json:"tracing"`
}

// obsStages are the pipeline stages the report (and CI) must cover.
var obsStages = []string{"view_materialize", "xpath_eval", "xupdate_apply"}

// obsDatabase builds a core database over the synthetic hospital document
// with the paper's role tree and axiom-13-style policy.
func obsDatabase(patients int) (*core.Database, error) {
	d, err := workload.Hospital(workload.HospitalConfig{Patients: patients, Seed: 1})
	if err != nil {
		return nil, err
	}
	db := core.New()
	steps := []error{
		db.LoadXMLString(workload.XML(d)),
		db.AddRole("staff"),
		db.AddRole("secretary", "staff"),
		db.AddRole("doctor", "staff"),
		db.AddRole("epidemiologist", "staff"),
		db.AddUser("beaufort", "secretary"),
		db.AddUser("laporte", "doctor"),
		db.AddUser("richard", "epidemiologist"),
		db.Grant(policy.Read, "/descendant-or-self::node()", "staff"),
		db.Revoke(policy.Read, "//diagnosis/node()", "secretary"),
		db.Grant(policy.Position, "//diagnosis/node()", "secretary"),
		db.Grant(policy.Insert, "//diagnosis", "doctor"),
		db.Grant(policy.Update, "//diagnosis/node()", "doctor"),
		db.Grant(policy.Delete, "//diagnosis/node()", "doctor"),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	return db, nil
}

// obsOp runs one workload operation, under a per-operation trace when a
// tracer is given (the tracing-on pass) and untraced otherwise.
func obsOp(tracer *obs.Tracer, name string, f func(context.Context) error) error {
	ctx := context.Background()
	if tracer != nil {
		var t *obs.Trace
		ctx, t = tracer.StartTrace(ctx, name)
		defer t.Finish()
	}
	return f(ctx)
}

// obsWorkload drives the mixed query/update loop against db and returns
// how many operations ran and how long the loop took. With a tracer every
// operation runs under its own trace; with nil the context carries no
// trace, which is the production default outside the HTTP server.
func obsWorkload(db *core.Database, patients, iters int, tracer *obs.Tracer) (int, time.Duration, error) {
	doctor, err := db.Session("laporte")
	if err != nil {
		return 0, 0, err
	}
	secretary, err := db.Session("beaufort")
	if err != nil {
		return 0, 0, err
	}
	ops := 0
	start := time.Now()
	for i := 0; i < iters; i++ {
		err := obsOp(tracer, "bench_query", func(ctx context.Context) error {
			_, err := doctor.QueryCtx(ctx, "//diagnosis")
			return err
		})
		if err != nil {
			return 0, 0, err
		}
		ops++
		if i%5 == 0 {
			err := obsOp(tracer, "bench_value", func(ctx context.Context) error {
				_, err := secretary.QueryValueCtx(ctx, "count(//service)")
				return err
			})
			if err != nil {
				return 0, 0, err
			}
			ops++
		}
		// Every 7th iteration pulls the materialized view. Since the read
		// ladder (core.QueryTieredCtx), plain queries are served by the
		// static-rewrite tier without touching the view cache — explicit
		// view pulls and the write path are the cache's clients.
		if i%7 == 0 {
			err := obsOp(tracer, "bench_view", func(ctx context.Context) error {
				_, err := doctor.ViewCtx(ctx)
				return err
			})
			if err != nil {
				return 0, 0, err
			}
			ops++
		}
		// Every 10th iteration writes, bumping the document version: the
		// steady state is ~90% cache hits on the read side.
		if i%10 == 9 {
			op := &xupdate.Op{
				Kind:     xupdate.Update,
				Select:   fmt.Sprintf("/patients/p%d/diagnosis", i%patients),
				NewValue: fmt.Sprintf("revised-%d", i),
			}
			err := obsOp(tracer, "bench_update", func(ctx context.Context) error {
				_, err := doctor.UpdateCtx(ctx, op)
				return err
			})
			if err != nil {
				return 0, 0, err
			}
			ops++
		}
	}
	return ops, time.Since(start), nil
}

// runObs executes the workload and returns the report. The registry is
// process-global, so it is reset first; the experiment therefore cannot run
// concurrently with other registry users.
func runObs(patients, iters int) (*ObsReport, error) {
	db, err := obsDatabase(patients)
	if err != nil {
		return nil, err
	}
	obs.Default().Reset()
	ops, elapsed, err := obsWorkload(db, patients, iters, nil)
	if err != nil {
		return nil, err
	}

	snap := obs.Default().Snapshot()
	rep := &ObsReport{
		Schema:         obsSchema,
		Config:         ObsConfig{Patients: patients, Iters: iters, Quick: quick},
		ElapsedSeconds: elapsed.Seconds(),
		Ops:            ops,
		OpsPerSec:      float64(ops) / elapsed.Seconds(),
		Stages:         make(map[string]ObsStage),
		Decisions:      make(map[string]uint64),
		Counters:       make(map[string]uint64),
	}
	for _, h := range snap.Histograms {
		if h.Name == obs.StageMetric {
			rep.Stages[h.Labels["stage"]] = ObsStage{
				Count: h.Count, P50: h.P50, P95: h.P95, P99: h.P99, Sum: h.Sum,
			}
		}
	}
	for _, c := range snap.Counters {
		switch c.Name {
		case "xmlsec_view_cache_hits_total":
			rep.Cache.Hits += c.Value
		case "xmlsec_view_cache_misses_total":
			rep.Cache.Misses += c.Value
		case "xmlsec_policy_decisions_total":
			rep.Decisions[c.Labels["effect"]+"/"+c.Labels["privilege"]] = c.Value
		default:
			rep.Counters[c.ID] = c.Value
		}
	}
	if total := rep.Cache.Hits + rep.Cache.Misses; total > 0 {
		rep.Cache.HitRate = float64(rep.Cache.Hits) / float64(total)
	}

	// Tracing-on pass: the same workload on a fresh database (so both
	// passes start cold), one trace per operation. The registry snapshot
	// above is untouched — it describes the tracing-off pass only.
	tracedDB, err := obsDatabase(patients)
	if err != nil {
		return nil, err
	}
	tracer := obs.NewTracer(0, 0, nil)
	opsOn, elapsedOn, err := obsWorkload(tracedDB, patients, iters, tracer)
	if err != nil {
		return nil, err
	}
	rep.Tracing = ObsTracing{
		OffOpsPerSec: rep.OpsPerSec,
		OnOpsPerSec:  float64(opsOn) / elapsedOn.Seconds(),
		Traces:       len(tracer.Summaries()),
	}
	rep.Tracing.OverheadPct = (1 - rep.Tracing.OnOpsPerSec/rep.Tracing.OffOpsPerSec) * 100
	return rep, nil
}

// bObs runs the experiment, prints the human table and writes the report.
func bObs() error {
	header("B10 — telemetry snapshot: mixed workload through the instrumented pipeline")
	patients, iters := 200, 2000
	if quick {
		patients, iters = 50, 200
	}
	if obsIters > 0 {
		iters = obsIters
	}
	rep, err := runObs(patients, iters)
	if err != nil {
		return err
	}
	fmt.Printf("patients=%d iters=%d ops=%d elapsed=%.3fs ops/sec=%.0f\n",
		patients, iters, rep.Ops, rep.ElapsedSeconds, rep.OpsPerSec)
	fmt.Printf("view cache: hits=%d misses=%d hit-rate=%.3f\n",
		rep.Cache.Hits, rep.Cache.Misses, rep.Cache.HitRate)
	fmt.Printf("%20s %10s %12s %12s %12s\n", "stage", "count", "p50", "p95", "p99")
	for _, name := range obsStages {
		st := rep.Stages[name]
		fmt.Printf("%20s %10d %12.6f %12.6f %12.6f\n", name, st.Count, st.P50, st.P95, st.P99)
	}
	fmt.Printf("tracing: off=%.0f ops/sec on=%.0f ops/sec overhead=%.1f%% traces=%d\n",
		rep.Tracing.OffOpsPerSec, rep.Tracing.OnOpsPerSec, rep.Tracing.OverheadPct, rep.Tracing.Traces)
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(obsOut, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", obsOut)
	fmt.Println("Expected shape: hit-rate ~0.9 (one doc-version miss per write);")
	fmt.Println("view_materialize dominates the read path, xupdate_apply the writes.")
	return nil
}

// validateObsReport checks an emitted report against the schema contract CI
// relies on. It returns the parsed report for optional display.
func validateObsReport(path string) (*ObsReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep ObsReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: not valid JSON: %w", path, err)
	}
	if rep.Schema != obsSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, obsSchema)
	}
	if rep.OpsPerSec <= 0 || rep.ElapsedSeconds <= 0 || rep.Ops <= 0 {
		return nil, fmt.Errorf("%s: non-positive throughput (ops=%d elapsed=%g ops/sec=%g)",
			path, rep.Ops, rep.ElapsedSeconds, rep.OpsPerSec)
	}
	for _, name := range obsStages {
		st, ok := rep.Stages[name]
		if !ok || st.Count == 0 {
			return nil, fmt.Errorf("%s: stage %q missing or empty", path, name)
		}
		if st.P50 < 0 || st.P50 > st.P95 || st.P95 > st.P99 {
			return nil, fmt.Errorf("%s: stage %q quantiles not monotone: p50=%g p95=%g p99=%g",
				path, name, st.P50, st.P95, st.P99)
		}
	}
	if rep.Cache.HitRate < 0 || rep.Cache.HitRate > 1 {
		return nil, fmt.Errorf("%s: hit_rate %g outside [0,1]", path, rep.Cache.HitRate)
	}
	if rep.Cache.Hits+rep.Cache.Misses == 0 {
		return nil, fmt.Errorf("%s: no view-cache activity recorded", path)
	}
	if len(rep.Decisions) == 0 {
		return nil, fmt.Errorf("%s: no policy decisions recorded", path)
	}
	if rep.Tracing.OffOpsPerSec <= 0 || rep.Tracing.OnOpsPerSec <= 0 {
		return nil, fmt.Errorf("%s: non-positive tracing throughput (off=%g on=%g)",
			path, rep.Tracing.OffOpsPerSec, rep.Tracing.OnOpsPerSec)
	}
	if rep.Tracing.Traces <= 0 {
		return nil, fmt.Errorf("%s: tracing-on pass recorded no traces", path)
	}
	if rep.Tracing.OverheadPct >= 100 || rep.Tracing.OverheadPct <= -100 {
		return nil, fmt.Errorf("%s: implausible tracing overhead %g%%", path, rep.Tracing.OverheadPct)
	}
	return &rep, nil
}
