package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestObsReportRoundTrip(t *testing.T) {
	rep, err := runObs(10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != obsSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	for _, name := range obsStages {
		if rep.Stages[name].Count == 0 {
			t.Errorf("stage %q empty", name)
		}
	}
	if rep.Cache.HitRate <= 0 || rep.Cache.HitRate >= 1 {
		t.Errorf("hit rate %g, want in (0,1) for a mixed workload", rep.Cache.HitRate)
	}
	if rep.Tracing.OffOpsPerSec <= 0 || rep.Tracing.OnOpsPerSec <= 0 {
		t.Errorf("tracing throughput off=%g on=%g, want positive",
			rep.Tracing.OffOpsPerSec, rep.Tracing.OnOpsPerSec)
	}
	if rep.Tracing.Traces <= 0 {
		t.Errorf("tracing pass retained %d traces, want > 0", rep.Tracing.Traces)
	}
	path := filepath.Join(t.TempDir(), "obs.json")
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := validateObsReport(path); err != nil {
		t.Errorf("round-trip report does not validate: %v", err)
	}
}

func TestValidateObsReportRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		file string
		want string
	}{
		{write("garbage.json", "not json"), "not valid JSON"},
		{write("schema.json", `{"schema":"other/v9"}`), "schema"},
		{write("v1.json", `{"schema":"securexml/bench-obs/v1"}`), "schema"},
		{write("empty.json", `{"schema":"securexml/bench-obs/v2","ops":1,"elapsed_seconds":1,"ops_per_sec":1}`), "stage"},
	}
	for _, c := range cases {
		_, err := validateObsReport(c.file)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("validate(%s) = %v, want error containing %q", c.file, err, c.want)
		}
	}
	if _, err := validateObsReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file must error")
	}
}
