// Experiment B12 (EXPERIMENTS.md): shared-scan cold evaluation vs the
// reference per-rule path. A fleet of users starts cold on the hospital
// document; the reference path runs policy.Evaluate per user (one
// full-document Select per applicable rule), the shared path runs
// policy.EvaluateShared against one fresh RuleCache per repetition (bank
// walk for chain-only rules, cross-user cache for $USER-independent ones,
// cache fill cost included). Both paths are verified cell-for-cell before
// timing. Rows are emitted as BENCH_b12.json.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"securexml/internal/policy"
	"securexml/internal/subject"
	"securexml/internal/workload"
	"securexml/internal/xmltree"
)

const b12Schema = "securexml/bench-b12/v1"

type b12Row struct {
	Patients        int     `json:"patients"`
	Nodes           int     `json:"nodes"`
	Rules           int     `json:"rules"`
	Mix             string  `json:"mix"`
	Users           int     `json:"users"`
	RefNsPerUser    float64 `json:"ref_ns_per_user"`
	SharedNsPerUser float64 `json:"shared_ns_per_user"`
	Speedup         float64 `json:"speedup"`
}

type b12Report struct {
	Schema string   `json:"schema"`
	Quick  bool     `json:"quick"`
	Rows   []b12Row `json:"rows"`
}

// b12Env builds the hospital environment with five extra staff users on
// top of the three built-ins, so the "staff" mix has an 8-user cold fleet
// whose paper-policy rules are all $USER-independent.
func b12Env(patients, extraRules int, seed int64) (*xmltree.Document, *subject.Hierarchy, *policy.Policy, error) {
	d, err := workload.Hospital(workload.HospitalConfig{Patients: patients, Seed: seed})
	if err != nil {
		return nil, nil, nil, err
	}
	h, err := workload.HospitalHierarchy(patients)
	if err != nil {
		return nil, nil, nil, err
	}
	extra := []struct{ user, role string }{
		{"s1", "secretary"}, {"s2", "secretary"},
		{"d1", "doctor"}, {"d2", "doctor"},
		{"e1", "epidemiologist"},
	}
	for _, e := range extra {
		if err := h.AddUser(e.user, e.role); err != nil {
			return nil, nil, nil, err
		}
	}
	var p *policy.Policy
	if extraRules > 0 {
		p, err = workload.ScaledPolicy(h, extraRules)
	} else {
		p, err = workload.HospitalPolicy(h)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	return d, h, p, nil
}

// b12Users returns the cold fleet for a mix.
func b12Users(mix string, patients int) []string {
	staff := []string{"beaufort", "laporte", "richard", "s1", "s2", "d1", "d2", "e1"}
	switch mix {
	case "staff":
		return staff
	case "patients":
		users := make([]string, 0, 8)
		for i := 0; i < 8 && i < patients; i++ {
			users = append(users, fmt.Sprintf("p%d", i))
		}
		return users
	default: // mixed
		users := append([]string(nil), staff[:4]...)
		for i := 0; i < 4 && i < patients; i++ {
			users = append(users, fmt.Sprintf("p%d", i))
		}
		return users
	}
}

// b12Verify pins shared == reference cell-for-cell (every node × privilege
// × user) before anything is timed.
func b12Verify(d *xmltree.Document, h *subject.Hierarchy, p *policy.Policy, users []string) error {
	cache := policy.NewRuleCache()
	for _, u := range users {
		ref, err := p.Evaluate(d, h, u)
		if err != nil {
			return err
		}
		got, err := p.EvaluateShared(d, h, u, cache)
		if err != nil {
			return err
		}
		for _, n := range d.Nodes() {
			id := n.ID().String()
			for _, priv := range policy.Privileges {
				if ref.HasID(id, priv) != got.HasID(id, priv) {
					return fmt.Errorf("user %s node %s priv %s: shared diverges from reference", u, id, priv)
				}
			}
		}
	}
	return nil
}

func b12Run(patients, extraRules int, mix string, reps int) (b12Row, error) {
	row := b12Row{Patients: patients, Mix: mix}
	d, h, p, err := b12Env(patients, extraRules, 1)
	if err != nil {
		return row, err
	}
	row.Nodes = d.Len()
	row.Rules = p.Len()
	users := b12Users(mix, patients)
	row.Users = len(users)
	if err := b12Verify(d, h, p, users); err != nil {
		return row, err
	}
	var refTotal, sharedTotal time.Duration
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		for _, u := range users {
			if _, err := p.Evaluate(d, h, u); err != nil {
				return row, err
			}
		}
		refTotal += time.Since(start)

		// A fresh cache per repetition: the fleet starts cold, the first
		// user pays the fill, everyone else merges cached sets.
		cache := policy.NewRuleCache()
		start = time.Now()
		for _, u := range users {
			if _, err := p.EvaluateShared(d, h, u, cache); err != nil {
				return row, err
			}
		}
		sharedTotal += time.Since(start)
	}
	perUser := float64(reps * len(users))
	row.RefNsPerUser = float64(refTotal.Nanoseconds()) / perUser
	row.SharedNsPerUser = float64(sharedTotal.Nanoseconds()) / perUser
	if row.SharedNsPerUser > 0 {
		row.Speedup = row.RefNsPerUser / row.SharedNsPerUser
	}
	return row, nil
}

func b12SharedScan() error {
	header("B12 — cold policy evaluation: shared scan + rule cache vs per-rule reference")
	sizes := []int{100, 1000}
	reps := 5
	if quick {
		sizes = []int{100}
		reps = 2
	}
	ruleSets := []int{0, 20} // extra rules on top of the 12-rule paper policy
	mixes := []string{"staff", "patients", "mixed"}
	rep := b12Report{Schema: b12Schema, Quick: quick}
	fmt.Printf("%10s %10s %7s %10s %7s %14s %14s %9s\n",
		"patients", "nodes", "rules", "mix", "users", "ref/user", "shared/user", "speedup")
	for _, n := range sizes {
		for _, extra := range ruleSets {
			for _, mix := range mixes {
				row, err := b12Run(n, extra, mix, reps)
				if err != nil {
					return err
				}
				rep.Rows = append(rep.Rows, row)
				fmt.Printf("%10d %10d %7d %10s %7d %14s %14s %8.1fx\n",
					row.Patients, row.Nodes, row.Rules, row.Mix, row.Users,
					time.Duration(row.RefNsPerUser), time.Duration(row.SharedNsPerUser), row.Speedup)
			}
		}
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(b12Out, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", b12Out)
	fmt.Println("Expected shape: staff fleets amortize to ~one document scan (all rules")
	fmt.Println("$USER-independent), so speedup grows with fleet size and rule count;")
	fmt.Println("patient fleets bound the win at the $USER-dependent remainder.")
	return nil
}

// validateB12Report checks an emitted B12 report against its schema: every
// row must carry positive sizes and timings, and the mix/user combinations
// must be internally consistent.
func validateB12Report(path string) (*b12Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep b12Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != b12Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, b12Schema)
	}
	if len(rep.Rows) == 0 {
		return nil, fmt.Errorf("%s: no rows", path)
	}
	for i, r := range rep.Rows {
		switch {
		case r.Patients <= 0 || r.Nodes <= 0 || r.Rules <= 0 || r.Users <= 0:
			return nil, fmt.Errorf("%s: row %d: non-positive size fields", path, i)
		case r.RefNsPerUser <= 0 || r.SharedNsPerUser <= 0 || r.Speedup <= 0:
			return nil, fmt.Errorf("%s: row %d: non-positive timings", path, i)
		case r.Mix != "staff" && r.Mix != "patients" && r.Mix != "mixed":
			return nil, fmt.Errorf("%s: row %d: unknown mix %q", path, i, r.Mix)
		}
	}
	return &rep, nil
}
