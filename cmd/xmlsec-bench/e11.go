// Experiment E11 (EXPERIMENTS.md): repair-engine success rate and analyzer
// throughput over the scenario corpus generator. For each shape at each
// size, a clean corpus pins the analyzer's zero-finding contract and its
// rules/sec; a seeded faulty corpus measures what fraction of repairable
// findings the engine offers a validated repair for and whether Fix
// converges to a clean policy; the clean corpus also stresses
// EvaluateShared/RuleCache with a cold user fleet at corpus scale. Rows
// are emitted as BENCH_e11.json.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"securexml/internal/policy"
	"securexml/internal/policyanalysis"
	"securexml/internal/scenario"
)

const e11Schema = "securexml/bench-e11/v1"

type e11Row struct {
	Shape string `json:"shape"`
	Rules int    `json:"rules"`

	// Clean-corpus analyzer throughput.
	AnalyzeMs   float64 `json:"analyze_ms"`
	RulesPerSec float64 `json:"rules_per_sec"`

	// Faulty-corpus repair metrics.
	Faults      int     `json:"faults"`
	Repairable  int     `json:"repairable_findings"`
	Repaired    int     `json:"repaired_findings"`
	SuccessRate float64 `json:"repair_success_rate"`
	PlanMs      float64 `json:"plan_ms"`
	FixClean    bool    `json:"fix_clean"`

	// Shared-scan stress on the clean corpus.
	StressUsers     int     `json:"stress_users"`
	SharedNsPerUser float64 `json:"shared_ns_per_user"`
}

type e11Report struct {
	Schema string   `json:"schema"`
	Quick  bool     `json:"quick"`
	Rows   []e11Row `json:"rows"`
}

func e11Run(shape string, rules int) (e11Row, error) {
	row := e11Row{Shape: shape}

	clean, err := scenario.GenerateCorpus(scenario.CorpusConfig{Shape: shape, Rules: rules, Seed: 1})
	if err != nil {
		return row, err
	}
	row.Rules = len(clean.Rules)
	start := time.Now()
	rep := policyanalysis.AnalyzeRules(clean.Hierarchy, clean.Rules)
	elapsed := time.Since(start)
	if len(rep.Findings) != 0 {
		return row, fmt.Errorf("%s/%d: clean corpus has %d findings", shape, rules, len(rep.Findings))
	}
	row.AnalyzeMs = float64(elapsed.Nanoseconds()) / 1e6
	row.RulesPerSec = float64(row.Rules) / elapsed.Seconds()

	faulty, err := scenario.GenerateCorpus(scenario.CorpusConfig{Shape: shape, Rules: rules, Seed: 1, Faults: 8})
	if err != nil {
		return row, err
	}
	row.Faults = len(faulty.Faults)
	start = time.Now()
	rr := policyanalysis.PlanRepairs(faulty.Doc, faulty.Hierarchy, faulty.Rules)
	row.PlanMs = float64(time.Since(start).Nanoseconds()) / 1e6
	repaired := map[string]bool{}
	for _, r := range rr.Repairs {
		repaired[r.Code+"@"+fmt.Sprint(r.Priority)] = true
	}
	for _, f := range rr.Findings {
		if !policyanalysis.RepairableCodes[f.Code] {
			continue
		}
		row.Repairable++
		if repaired[f.Code+"@"+fmt.Sprint(f.Priority)] {
			row.Repaired++
		}
	}
	if row.Repairable > 0 {
		row.SuccessRate = float64(row.Repaired) / float64(row.Repairable)
	}
	_, _, after := policyanalysis.Fix(faulty.Doc, faulty.Hierarchy, faulty.Rules)
	row.FixClean = len(after.Findings) == 0

	// Cold-fleet shared scan over the clean corpus: one RuleCache, every
	// user merges from it after the first fill.
	pol, err := clean.Policy()
	if err != nil {
		return row, err
	}
	users := clean.Hierarchy.Users()
	if len(users) > 8 {
		users = users[:8]
	}
	row.StressUsers = len(users)
	cache := policy.NewRuleCache()
	start = time.Now()
	for _, u := range users {
		if _, err := pol.EvaluateShared(clean.Doc, clean.Hierarchy, u, cache); err != nil {
			return row, err
		}
	}
	row.SharedNsPerUser = float64(time.Since(start).Nanoseconds()) / float64(len(users))
	return row, nil
}

func e11RepairEngine() error {
	header("E11 — repair success rate, analyzer throughput, corpus shared-scan stress")
	sizes := []int{1000, 10000}
	if quick {
		sizes = []int{1000}
	}
	rep := e11Report{Schema: e11Schema, Quick: quick}
	fmt.Printf("%10s %7s %11s %12s %7s %11s %9s %9s %10s %14s\n",
		"shape", "rules", "analyze", "rules/sec", "faults", "repairable", "repaired", "fixclean", "plan", "shared/user")
	for _, shape := range scenario.Shapes() {
		for _, n := range sizes {
			row, err := e11Run(shape, n)
			if err != nil {
				return err
			}
			rep.Rows = append(rep.Rows, row)
			fmt.Printf("%10s %7d %10.1fms %12.0f %7d %11d %9d %9v %8.1fms %14s\n",
				row.Shape, row.Rules, row.AnalyzeMs, row.RulesPerSec, row.Faults,
				row.Repairable, row.Repaired, row.FixClean, row.PlanMs,
				time.Duration(row.SharedNsPerUser))
		}
	}
	f, err := os.Create(e11Out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(rep)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Printf("\nwrote %s\n", e11Out)
	}
	return err
}
