// Command xmlsec-shell is an interactive shell over the secure XML
// database: log in as a subject, query your view, and run XUpdate
// operations under the paper's access controls. The command interpreter
// lives in internal/shell.
//
// Usage:
//
//	xmlsec-shell            # start with the paper's hospital scenario
//	xmlsec-shell -empty     # start with an empty database
//	xmlsec-shell -load f.xml
//
// Type "help" at the prompt for commands.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"securexml/internal/core"
	"securexml/internal/scenario"
	"securexml/internal/shell"
)

func main() {
	empty := flag.Bool("empty", false, "start with an empty database")
	load := flag.String("load", "", "load an XML document at startup")
	flag.Parse()

	db := core.New()
	if !*empty && *load == "" {
		if err := scenario.Setup(db); err != nil {
			fatal(err)
		}
		fmt.Println("Loaded the paper's hospital scenario.")
		fmt.Println("Users: beaufort (secretary), laporte (doctor), richard (epidemiologist), robert, franck (patients).")
	}
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		err = db.LoadXML(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Loaded %s.\n", *load)
	}
	fmt.Println(`Type "help" for commands.`)

	sh := shell.New(db, os.Stdout)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for {
		if user := sh.User(); user != "" {
			fmt.Printf("%s> ", user)
		} else {
			fmt.Print("> ")
		}
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "quit" || line == "exit" {
			return
		}
		if err := sh.Execute(line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmlsec-shell:", err)
	os.Exit(1)
}
